// PartitionedCSR differential suite: whatever the shard count and however
// the cut was produced (contiguous chunks or the multilevel partitioner),
// the sharded layout must describe exactly the input graph and the
// owner-computes kernels must agree with the flat engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/partition/partitioned_csr.hpp"
#include "snap/util/parallel.hpp"

namespace snap {
namespace {

CSRGraph test_graph() {
  gen::RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 31;
  return gen::rmat(p);
}

void expect_layout_consistent(const CSRGraph& g, const PartitionedCSR& p) {
  ASSERT_EQ(p.num_vertices(), g.num_vertices());
  ASSERT_EQ(p.num_arcs(), g.num_arcs());
  // Shard ranges tile [0, n) and shard_of agrees with them.
  vid_t covered = 0;
  eid_t arcs = 0, boundary = 0;
  for (int s = 0; s < p.num_shards(); ++s) {
    const auto& sh = p.shard(s);
    ASSERT_EQ(sh.first, covered);
    ASSERT_LE(sh.first, sh.last);
    covered = sh.last;
    arcs += sh.offsets.back();
    boundary += sh.boundary_arcs;
    for (vid_t u = sh.first; u < sh.last; ++u) ASSERT_EQ(p.owner(u), s);
  }
  ASSERT_EQ(covered, g.num_vertices());
  ASSERT_EQ(arcs, g.num_arcs());
  ASSERT_EQ(boundary, p.boundary_arcs());
  // Every shard row is the old vertex's neighbor multiset mapped to new ids.
  for (int s = 0; s < p.num_shards(); ++s) {
    const auto& sh = p.shard(s);
    for (vid_t u = sh.first; u < sh.last; ++u) {
      const vid_t old = p.new_to_old()[static_cast<std::size_t>(u)];
      const auto nb = g.neighbors(old);
      const vid_t li = u - sh.first;
      const eid_t lo = sh.offsets[static_cast<std::size_t>(li)];
      const eid_t hi = sh.offsets[static_cast<std::size_t>(li) + 1];
      ASSERT_EQ(hi - lo, static_cast<eid_t>(nb.size()));
      std::vector<vid_t> expected;
      for (const vid_t w : nb)
        expected.push_back(p.old_to_new()[static_cast<std::size_t>(w)]);
      std::sort(expected.begin(), expected.end());
      for (eid_t a = lo; a < hi; ++a)
        ASSERT_EQ(sh.adj[static_cast<std::size_t>(a)],
                  expected[static_cast<std::size_t>(a - lo)]);
    }
  }
}

void expect_kernels_match_flat(const CSRGraph& g, const PartitionedCSR& p,
                               const std::string& what) {
  // Degrees.
  const std::vector<eid_t> deg = p.degrees();
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(deg[static_cast<std::size_t>(v)], g.degree(v)) << what;

  // BFS distances from several sources, including an isolated-ish tail id.
  for (const vid_t s : {vid_t{0}, g.num_vertices() / 2,
                        g.num_vertices() - 1}) {
    const BFSResult ref = bfs_serial(g, s);
    const std::vector<std::int64_t> got = p.bfs_distances(s);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(got[static_cast<std::size_t>(v)],
                ref.dist[static_cast<std::size_t>(v)])
          << what << " source " << s << " vertex " << v;
  }

  // Components: same partition (bijective label correspondence), same count.
  const Components ref = connected_components(g);
  const Components got = p.components();
  ASSERT_EQ(got.count, ref.count) << what;
  ASSERT_EQ(got.label.size(), ref.label.size()) << what;
  std::map<vid_t, vid_t> fwd, bwd;
  for (std::size_t v = 0; v < ref.label.size(); ++v) {
    const vid_t a = ref.label[v], b = got.label[v];
    const auto [fit, fnew] = fwd.emplace(a, b);
    ASSERT_EQ(fit->second, b) << what << " vertex " << v;
    const auto [bit, bnew] = bwd.emplace(b, a);
    ASSERT_EQ(bit->second, a) << what << " vertex " << v;
  }
}

TEST(PartitionedCSR, ContiguousCutMatchesFlatEngines) {
  const CSRGraph g = test_graph();
  for (const int k : {1, 2, 4, 7}) {
    PartitionedCSROptions opts;
    opts.num_shards = k;
    opts.use_partitioner = false;
    const PartitionedCSR p = PartitionedCSR::build(g, opts);
    ASSERT_EQ(p.num_shards(), k);
    expect_layout_consistent(g, p);
    expect_kernels_match_flat(g, p, "contiguous k=" + std::to_string(k));
  }
}

TEST(PartitionedCSR, MultilevelCutMatchesFlatEngines) {
  const CSRGraph g = test_graph();
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = true;
  const PartitionedCSR p = PartitionedCSR::build(g, opts);
  expect_layout_consistent(g, p);
  expect_kernels_match_flat(g, p, "multilevel k=4");
  EXPECT_LT(p.boundary_arcs(), p.num_arcs());
}

TEST(PartitionedCSR, MultilevelCutBeatsBlindCutOnPlantedPartition) {
  // On a graph with genuine cluster structure the multilevel partitioner
  // must find a cut with fewer boundary arcs than blind contiguous chunks.
  // (On small-world R-MAT no good cut exists and either can win — that is
  // why this claim is pinned to a planted-partition instance.)  The planted
  // generator lays communities out in contiguous id ranges — which is
  // exactly the blind cut — so scramble the ids first to make the
  // partitioner actually find the structure.
  const CSRGraph planted = gen::planted_partition(2000, 4, 10.0, 0.5, 47);
  std::vector<vid_t> perm(static_cast<std::size_t>(planted.num_vertices()));
  for (std::size_t i = 0; i < perm.size(); ++i)
    perm[i] = static_cast<vid_t>((i * 997) % perm.size());  // 997 coprime
  const CSRGraph g = relabel(planted, perm).graph;
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = true;
  const PartitionedCSR p = PartitionedCSR::build(g, opts);
  PartitionedCSROptions blind = opts;
  blind.use_partitioner = false;
  const PartitionedCSR q = PartitionedCSR::build(g, blind);
  EXPECT_LT(p.boundary_arcs(), q.boundary_arcs());
  expect_kernels_match_flat(g, p, "planted multilevel");
}

TEST(PartitionedCSR, DisconnectedGraphComponents) {
  // Pure planted partition with zero inter-community edges: many components,
  // and every cross-shard exchange round must still converge.
  const CSRGraph g = gen::planted_partition(1200, 12, 8.0, 0.0, 41);
  PartitionedCSROptions opts;
  opts.num_shards = 5;
  opts.use_partitioner = false;
  const PartitionedCSR p = PartitionedCSR::build(g, opts);
  expect_kernels_match_flat(g, p, "disconnected");
}

TEST(PartitionedCSR, GridGraphHighDiameter) {
  // High-diameter near-planar instance: many BFS levels, so the batched
  // boundary exchange runs many rounds.
  const CSRGraph g = gen::grid_road(40, 50, 0.05, 0.05, 43);
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  const PartitionedCSR p = PartitionedCSR::build(g, opts);
  expect_layout_consistent(g, p);
  expect_kernels_match_flat(g, p, "grid");
}

TEST(PartitionedCSR, ThreadCountInvariance) {
  // Same shard count, different thread counts: layout and kernel results
  // must not depend on how many threads materialized them.
  const CSRGraph g = test_graph();
  PartitionedCSROptions opts;
  opts.num_shards = 4;
  opts.use_partitioner = false;
  std::vector<std::int64_t> ref_dist;
  std::vector<vid_t> ref_order;
  for (const int t : {1, 2, 4, 8}) {
    parallel::ThreadScope scope(t);
    const PartitionedCSR p = PartitionedCSR::build(g, opts);
    const std::vector<std::int64_t> dist = p.bfs_distances(0);
    if (t == 1) {
      ref_dist = dist;
      ref_order = p.new_to_old();
    } else {
      ASSERT_EQ(p.new_to_old(), ref_order) << "threads=" << t;
      ASSERT_EQ(dist, ref_dist) << "threads=" << t;
    }
  }
}

TEST(PartitionedCSR, SingleShardDegenerate) {
  const CSRGraph g = gen::path_graph(64);
  PartitionedCSROptions opts;
  opts.num_shards = 1;
  const PartitionedCSR p = PartitionedCSR::build(g, opts);
  ASSERT_EQ(p.num_shards(), 1);
  EXPECT_EQ(p.boundary_arcs(), 0);
  expect_kernels_match_flat(g, p, "single shard");
}

}  // namespace
}  // namespace snap
