// Tests for the k-core kernel, path-limited BFS, sampled vertex
// betweenness, and the clustering-comparison measures.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "snap/centrality/betweenness.hpp"
#include "snap/community/compare.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/kcore.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// ------------------------------------------------------------------ k-core

TEST(KCore, CompleteGraph) {
  const auto g = gen::complete_graph(6);
  const auto r = kcore_decomposition(g);
  for (eid_t c : r.core) EXPECT_EQ(c, 5);
  EXPECT_EQ(r.degeneracy, 5);
}

TEST(KCore, PathGraphIsOneCore) {
  const auto g = gen::path_graph(10);
  const auto r = kcore_decomposition(g);
  for (eid_t c : r.core) EXPECT_EQ(c, 1);
}

TEST(KCore, CliqueWithPendantTail) {
  // K5 (vertices 0..4) with a path 4-5-6 hanging off.
  EdgeList edges;
  for (vid_t u = 0; u < 5; ++u)
    for (vid_t v = u + 1; v < 5; ++v) edges.push_back({u, v, 1.0});
  edges.push_back({4, 5, 1.0});
  edges.push_back({5, 6, 1.0});
  const auto g = CSRGraph::from_edges(7, edges, false);
  const auto r = kcore_decomposition(g);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(r.core[v], 4) << v;
  EXPECT_EQ(r.core[5], 1);
  EXPECT_EQ(r.core[6], 1);
  EXPECT_EQ(r.degeneracy, 4);
  EXPECT_EQ(r.shell_at_least(4).size(), 5u);
  EXPECT_EQ(r.shell_at_least(1).size(), 7u);
}

TEST(KCore, StarIsOneCore) {
  const auto r = kcore_decomposition(gen::star_graph(20));
  for (eid_t c : r.core) EXPECT_EQ(c, 1);
}

/// Property: the subgraph induced by {v : core[v] >= k} has min degree >= k.
class KCoreProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreProperty, ShellInducesMinDegree) {
  SplitMix64 rng(GetParam());
  EdgeList edges;
  const vid_t n = 120;
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto g = CSRGraph::from_edges(n, edges, false);
  const auto r = kcore_decomposition(g);
  for (eid_t k = 1; k <= r.degeneracy; ++k) {
    const auto shell = r.shell_at_least(k);
    std::vector<std::uint8_t> in(static_cast<std::size_t>(n), 0);
    for (vid_t v : shell) in[static_cast<std::size_t>(v)] = 1;
    for (vid_t v : shell) {
      eid_t d = 0;
      for (vid_t u : g.neighbors(v))
        if (in[static_cast<std::size_t>(u)]) ++d;
      EXPECT_GE(d, k) << "vertex " << v << " at k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreProperty, ::testing::Values(1, 2, 3, 4));

TEST(KCore, DirectedThrows) {
  const auto g = CSRGraph::from_edges(2, {{0, 1, 1.0}}, /*directed=*/true);
  EXPECT_THROW(kcore_decomposition(g), std::invalid_argument);
}

// ------------------------------------------------------------ bounded BFS

TEST(BoundedBfs, StopsAtDepth) {
  const auto g = gen::path_graph(10);
  const auto r = bfs_bounded(g, 0, 3);
  EXPECT_EQ(r.num_visited, 4);  // 0,1,2,3
  EXPECT_EQ(r.dist[3], 3);
  EXPECT_EQ(r.dist[4], -1);
  EXPECT_EQ(r.num_levels, 3);
}

TEST(BoundedBfs, LargeDepthMatchesFullBfs) {
  const auto g = gen::erdos_renyi(300, 900, false, 4);
  const auto full = bfs_serial(g, 0);
  const auto bounded = bfs_bounded(g, 0, 1 << 20);
  EXPECT_EQ(bounded.dist, full.dist);
  EXPECT_EQ(bounded.num_levels, full.num_levels);
}

TEST(BoundedBfs, DepthZeroIsSourceOnly) {
  const auto g = gen::cycle_graph(5);
  const auto r = bfs_bounded(g, 2, 0);
  EXPECT_EQ(r.num_visited, 1);
  EXPECT_EQ(r.dist[2], 0);
  EXPECT_EQ(r.dist[1], -1);
}

// ---------------------------------------------- sampled vertex betweenness

TEST(ApproxVertexBC, AllSourcesEqualsExact) {
  const auto g = gen::karate_club();
  std::vector<vid_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), vid_t{0});
  const auto approx = approx_vertex_betweenness(g, all);
  const auto exact = betweenness_centrality(g).vertex;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(approx[v], exact[v], 1e-9);
}

TEST(ApproxVertexBC, SampledRanksHubFirst) {
  const auto g = gen::barbell_graph(30);
  std::vector<vid_t> sources;
  for (vid_t v = 1; v < g.num_vertices(); v += 7) sources.push_back(v);
  const auto approx = approx_vertex_betweenness(g, sources);
  const auto top = static_cast<vid_t>(
      std::max_element(approx.begin(), approx.end()) - approx.begin());
  EXPECT_TRUE(top == 29 || top == 30);  // a bridge endpoint
}

// -------------------------------------------------------- compare measures

TEST(Compare, IdenticalPartitions) {
  const std::vector<vid_t> a{0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(rand_index(a, a), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Compare, RelabeledPartitionsAreIdentical) {
  const std::vector<vid_t> a{0, 0, 1, 1, 2};
  const std::vector<vid_t> b{7, 7, 3, 3, 9};
  EXPECT_DOUBLE_EQ(rand_index(a, b), 1.0);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(Compare, KnownDisagreement) {
  const std::vector<vid_t> a{0, 0, 1, 1};
  const std::vector<vid_t> b{0, 1, 0, 1};
  // Pairs: (0,1) together-a/apart-b, (2,3) same; (0,2),(1,3) apart-a ...
  // agreement = 2 of 6 pairs.
  EXPECT_NEAR(rand_index(a, b), 2.0 / 6.0, 1e-12);
  EXPECT_LT(adjusted_rand_index(a, b), 0.01);
}

TEST(Compare, AriNearZeroForRandomLabels) {
  SplitMix64 rng(5);
  std::vector<vid_t> a(2000), b(2000);
  for (auto& x : a) x = static_cast<vid_t>(rng.next_bounded(8));
  for (auto& x : b) x = static_cast<vid_t>(rng.next_bounded(8));
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.05);
  EXPECT_NEAR(normalized_mutual_information(a, b), 0.0, 0.05);
}

TEST(Compare, SizeMismatchThrows) {
  EXPECT_THROW(rand_index({0, 1}, {0}), std::invalid_argument);
}

TEST(Compare, RefinementScoresBetweenZeroAndOne) {
  // b refines a: every cluster of b sits inside a cluster of a.
  const std::vector<vid_t> a{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<vid_t> b{0, 0, 1, 1, 2, 2, 3, 3};
  const double ari = adjusted_rand_index(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
  const double nmi = normalized_mutual_information(a, b);
  EXPECT_GT(nmi, 0.5);
  EXPECT_LT(nmi, 1.0);
}

}  // namespace
}  // namespace snap
