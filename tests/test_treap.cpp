#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "snap/ds/treap.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

std::vector<std::int64_t> sorted_of(const std::set<std::int64_t>& s) {
  return {s.begin(), s.end()};
}

TEST(Treap, InsertContainsErase) {
  Treap t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.insert(9));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.contains(3));
  EXPECT_FALSE(t.contains(4));
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.contains(3));
}

TEST(Treap, InOrderTraversalSorted) {
  Treap t;
  for (std::int64_t k : {9, 1, 7, 3, 5, 2, 8}) t.insert(k);
  const auto v = t.to_vector();
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.size(), 7u);
}

TEST(Treap, LowerBound) {
  Treap t;
  for (std::int64_t k : {10, 20, 30}) t.insert(k);
  std::int64_t out = 0;
  ASSERT_TRUE(t.lower_bound(15, out));
  EXPECT_EQ(out, 20);
  ASSERT_TRUE(t.lower_bound(20, out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(t.lower_bound(31, out));
}

TEST(Treap, SplitPartitionsKeys) {
  Treap t;
  for (std::int64_t k = 0; k < 100; ++k) t.insert(k);
  Treap hi = t.split(40);
  EXPECT_EQ(t.size(), 40u);
  EXPECT_EQ(hi.size(), 60u);
  for (std::int64_t k = 0; k < 40; ++k) EXPECT_TRUE(t.contains(k));
  for (std::int64_t k = 40; k < 100; ++k) EXPECT_TRUE(hi.contains(k));
}

TEST(Treap, FromSortedBuildsValidTreap) {
  std::vector<std::int64_t> keys;
  for (std::int64_t k = 0; k < 500; k += 2) keys.push_back(k);
  Treap t = Treap::from_sorted(keys);
  EXPECT_EQ(t.size(), keys.size());
  EXPECT_TRUE(t.contains(0));
  EXPECT_TRUE(t.contains(498));
  EXPECT_FALSE(t.contains(3));
  EXPECT_EQ(t.to_vector(), keys);
  // It must behave like a normal treap afterwards.
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.erase(0));
  EXPECT_EQ(t.to_vector().size(), keys.size());
}

class TreapRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreapRandomOps, MatchesStdSetReference) {
  SplitMix64 rng(GetParam());
  Treap t;
  std::set<std::int64_t> ref;
  for (int op = 0; op < 5000; ++op) {
    const auto key = static_cast<std::int64_t>(rng.next_bounded(300));
    switch (rng.next_bounded(3)) {
      case 0:
        EXPECT_EQ(t.insert(key), ref.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(t.contains(key), ref.count(key) > 0);
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  EXPECT_EQ(t.to_vector(), sorted_of(ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5));

class TreapSetOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreapSetOps, UnionMatchesReference) {
  SplitMix64 rng(GetParam());
  Treap a, b;
  std::set<std::int64_t> ra, rb;
  for (int i = 0; i < 400; ++i) {
    const auto ka = static_cast<std::int64_t>(rng.next_bounded(500));
    const auto kb = static_cast<std::int64_t>(rng.next_bounded(500));
    a.insert(ka);
    ra.insert(ka);
    b.insert(kb);
    rb.insert(kb);
  }
  std::set<std::int64_t> ru = ra;
  ru.insert(rb.begin(), rb.end());
  a.union_with(std::move(b));
  EXPECT_EQ(a.to_vector(), sorted_of(ru));
  EXPECT_EQ(a.size(), ru.size());
}

TEST_P(TreapSetOps, IntersectionMatchesReference) {
  SplitMix64 rng(GetParam() + 100);
  Treap a, b;
  std::set<std::int64_t> ra, rb;
  for (int i = 0; i < 400; ++i) {
    const auto ka = static_cast<std::int64_t>(rng.next_bounded(300));
    const auto kb = static_cast<std::int64_t>(rng.next_bounded(300));
    a.insert(ka);
    ra.insert(ka);
    b.insert(kb);
    rb.insert(kb);
  }
  std::set<std::int64_t> ri;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(ri, ri.begin()));
  a.intersect_with(std::move(b));
  EXPECT_EQ(a.to_vector(), sorted_of(ri));
}

TEST_P(TreapSetOps, DifferenceMatchesReference) {
  SplitMix64 rng(GetParam() + 200);
  Treap a, b;
  std::set<std::int64_t> ra, rb;
  for (int i = 0; i < 400; ++i) {
    const auto ka = static_cast<std::int64_t>(rng.next_bounded(300));
    const auto kb = static_cast<std::int64_t>(rng.next_bounded(300));
    a.insert(ka);
    ra.insert(ka);
    b.insert(kb);
    rb.insert(kb);
  }
  std::set<std::int64_t> rd;
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::inserter(rd, rd.begin()));
  a.difference_with(std::move(b));
  EXPECT_EQ(a.to_vector(), sorted_of(rd));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapSetOps, ::testing::Values(11, 22, 33));

TEST(Treap, MoveSemantics) {
  Treap a;
  for (std::int64_t k = 0; k < 10; ++k) a.insert(k);
  Treap b = std::move(a);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT: moved-from is valid-empty by design
  a = std::move(b);
  EXPECT_EQ(a.size(), 10u);
}

TEST(Treap, ClearEmpties) {
  Treap t;
  for (std::int64_t k = 0; k < 100; ++k) t.insert(k);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));
}

TEST(Treap, LargeScaleStress) {
  Treap t;
  for (std::int64_t k = 0; k < 50000; ++k) t.insert(k * 7919 % 100003);
  EXPECT_EQ(t.size(), 50000u);
  const auto v = t.to_vector();
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace snap
