// Cross-kernel invariants over a zoo of graph families: every test here
// ties two independent implementations together through a mathematical
// identity, so a bug in either side breaks the equation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/stress.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/kcore.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/kernels/sssp.hpp"
#include "snap/metrics/path_length.hpp"

namespace snap {
namespace {

/// The graph zoo: one representative per structural family, all small
/// enough for exact all-pairs reference computations.
CSRGraph zoo(int which) {
  switch (which) {
    case 0: {
      gen::RmatParams p;
      p.scale = 8;
      p.edge_factor = 6;
      return gen::rmat(p);  // skewed degrees, fragmented
    }
    case 1:
      return gen::erdos_renyi(300, 1200, false, 5);  // uniform degrees
    case 2:
      return gen::watts_strogatz(300, 3, 0.1, 7);  // ring + shortcuts
    case 3:
      return gen::grid_road(17, 17, 0.05, 0.05, 9);  // near-Euclidean
    case 4:
      return gen::planted_partition(300, 5, 8.0, 1.0, 11);  // communities
    default:
      return gen::barbell_graph(20);  // bridge-dominated
  }
}

class Zoo : public ::testing::TestWithParam<int> {
 protected:
  CSRGraph g_ = zoo(GetParam());
};

/// Identity: Σ_v BC(v) = Σ_{unordered pairs s,t} (d(s,t) − 1),
/// because the pair-dependencies σ_st(v)/σ_st sum to the interior length
/// of the s-t shortest paths.
TEST_P(Zoo, VertexBetweennessSumsToInteriorPathLength) {
  const auto bc = betweenness_centrality(g_);
  double bc_sum = 0;
  for (double x : bc.vertex) bc_sum += x;
  const auto paths = exact_path_length(g_);
  // paths.average * pairs_sampled counts ordered pairs; halve for unordered.
  const double interior =
      (paths.average - 1.0) * static_cast<double>(paths.pairs_sampled) / 2.0;
  EXPECT_NEAR(bc_sum, interior, 1e-6 * std::max(1.0, interior));
}

/// Identity: Σ_e BC(e) = Σ_{unordered pairs} d(s,t) — every pair spreads
/// exactly d(s,t) units of flow over edges.
TEST_P(Zoo, EdgeBetweennessSumsToTotalPathLength) {
  const auto bc = betweenness_centrality(g_);
  double sum = 0;
  for (double x : bc.edge) sum += x;
  const auto paths = exact_path_length(g_);
  const double total =
      paths.average * static_cast<double>(paths.pairs_sampled) / 2.0;
  EXPECT_NEAR(sum, total, 1e-6 * std::max(1.0, total));
}

/// Stress dominates betweenness pointwise (σ_st(v) ≥ σ_st(v)/σ_st).
TEST_P(Zoo, StressDominatesBetweenness) {
  const auto bc = betweenness_centrality(g_).vertex;
  const auto st = stress_centrality(g_);
  for (vid_t v = 0; v < g_.num_vertices(); ++v)
    EXPECT_GE(st[static_cast<std::size_t>(v)],
              bc[static_cast<std::size_t>(v)] - 1e-9);
}

/// Every bridge belongs to every spanning forest.
TEST_P(Zoo, BridgesAppearInTheMST) {
  const auto bcc = biconnected_components(g_);
  const auto mst = boruvka_mst(g_);
  std::vector<std::uint8_t> in_mst(static_cast<std::size_t>(g_.num_edges()),
                                   0);
  for (eid_t e : mst.tree_edges) in_mst[static_cast<std::size_t>(e)] = 1;
  for (eid_t e : bcc.bridges())
    EXPECT_TRUE(in_mst[static_cast<std::size_t>(e)]) << "bridge " << e;
}

/// Component count from the label-propagation kernel equals n − |forest|.
TEST_P(Zoo, ComponentsConsistentWithSpanningForest) {
  const auto comps = connected_components(g_);
  const auto mst = boruvka_mst(g_);
  EXPECT_EQ(comps.count, mst.num_trees);
  EXPECT_EQ(static_cast<eid_t>(mst.tree_edges.size()),
            static_cast<eid_t>(g_.num_vertices()) - comps.count);
}

/// Unit-weight delta-stepping distances equal BFS hop distances.
TEST_P(Zoo, UnitWeightSsspMatchesBfs) {
  const auto b = bfs_serial(g_, 0);
  const auto d = delta_stepping(g_, 0);
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    if (b.dist[static_cast<std::size_t>(v)] < 0) {
      EXPECT_TRUE(std::isinf(d.dist[static_cast<std::size_t>(v)]));
    } else {
      EXPECT_DOUBLE_EQ(
          d.dist[static_cast<std::size_t>(v)],
          static_cast<double>(b.dist[static_cast<std::size_t>(v)]));
    }
  }
}

/// Core numbers are bounded by degree, and the degeneracy bounds the
/// clique number direction: max core >= largest k with a (k+1)-clique...
/// here we check the cheap side: core[v] <= deg(v) and degeneracy <= dmax.
TEST_P(Zoo, CoreNumbersBoundedByDegree) {
  const auto kc = kcore_decomposition(g_);
  for (vid_t v = 0; v < g_.num_vertices(); ++v)
    EXPECT_LE(kc.core[static_cast<std::size_t>(v)], g_.degree(v));
  EXPECT_LE(kc.degeneracy, g_.max_degree());
}

/// Relabeling is an isomorphism: BFS distances transfer through the map,
/// and degree multisets match.
TEST_P(Zoo, RelabelingPreservesStructure) {
  for (int mode = 0; mode < 2; ++mode) {
    const ReorderedGraph r =
        mode == 0 ? relabel_by_degree(g_) : relabel_by_bfs(g_, 0);
    ASSERT_EQ(r.graph.num_vertices(), g_.num_vertices());
    ASSERT_EQ(r.graph.num_edges(), g_.num_edges());
    // Degrees transfer.
    for (vid_t nu = 0; nu < r.graph.num_vertices(); ++nu)
      EXPECT_EQ(r.graph.degree(nu),
                g_.degree(r.new_to_old[static_cast<std::size_t>(nu)]));
    // Distances transfer.
    const vid_t old_src = 0;
    const vid_t new_src = r.old_to_new[static_cast<std::size_t>(old_src)];
    const auto d_old = bfs_serial(g_, old_src);
    const auto d_new = bfs_serial(r.graph, new_src);
    for (vid_t v = 0; v < g_.num_vertices(); ++v)
      EXPECT_EQ(d_new.dist[static_cast<std::size_t>(
                    r.old_to_new[static_cast<std::size_t>(v)])],
                d_old.dist[static_cast<std::size_t>(v)]);
  }
}

/// Degree relabeling actually sorts the degrees.
TEST_P(Zoo, DegreeRelabelIsMonotone) {
  const auto r = relabel_by_degree(g_);
  for (vid_t v = 1; v < r.graph.num_vertices(); ++v)
    EXPECT_LE(r.graph.degree(v), r.graph.degree(v - 1));
}

INSTANTIATE_TEST_SUITE_P(Families, Zoo,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Relabel, RejectsNonPermutations) {
  const auto g = gen::path_graph(4);
  EXPECT_THROW(relabel(g, {0, 1, 2}), std::invalid_argument);     // short
  EXPECT_THROW(relabel(g, {0, 1, 2, 2}), std::invalid_argument);  // dup
  EXPECT_THROW(relabel(g, {0, 1, 2, 9}), std::invalid_argument);  // range
}

}  // namespace
}  // namespace snap
