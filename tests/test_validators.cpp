// Mutation tests for the structural validators (snap/debug/validate.hpp):
// corrupt one invariant of each structure through debug::Access and assert
// the validator reports it — with a message specific enough to debug from.
// Every structure also gets a clean-state "validates OK" check, so a
// validator that rejects healthy structures cannot hide behind these tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "snap/community/louvain.hpp"
#include "snap/community/modularity.hpp"
#include "snap/debug/check.hpp"
#include "snap/debug/validate.hpp"
#include "snap/ds/dendrogram.hpp"
#include "snap/ds/treap.hpp"
#include "snap/ds/union_find.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/stream/streaming_graph.hpp"

namespace snap {
namespace {

using debug::Access;
using debug::ValidationReport;

bool mentions(const ValidationReport& r, const std::string& needle) {
  for (const std::string& e : r.errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

CSRGraph small_graph() {
  return CSRGraph::from_edges(
      6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, /*directed=*/false);
}

// ------------------------------------------------------------------- CSR

TEST(ValidateCSR, CleanGraphPasses) {
  const CSRGraph g = gen::erdos_renyi(200, 800, /*directed=*/false, 5);
  const ValidationReport r = debug::validate(g);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.checks_run, 0u);
}

TEST(ValidateCSR, CorruptAdjacencyTargetCaught) {
  CSRGraph g = small_graph();
  Access::mutable_adj(g)[0] = 99;  // neighbor id far out of [0, n)
  const ValidationReport r = debug::validate(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "99")) << r.to_string();
}

TEST(ValidateCSR, BrokenRowSortCaught) {
  CSRGraph g = small_graph();
  // Vertex 2 has neighbors {0, 1, 3}; reversing two entries breaks the
  // sorted-adjacency contract (and arc/edge alignment).
  auto& adj = Access::mutable_adj(g);
  const auto& offs = Access::offsets(g);
  const auto lo = static_cast<std::size_t>(offs[2]);
  ASSERT_GE(offs[3] - offs[2], 2);
  std::swap(adj[lo], adj[lo + 1]);
  const ValidationReport r = debug::validate(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "sorted") || mentions(r, "arc")) << r.to_string();
}

TEST(ValidateCSR, NonMonotoneOffsetsCaught) {
  CSRGraph g = small_graph();
  auto& offs = Access::mutable_offsets(g);
  offs[2] = offs[3] + 1;
  const ValidationReport r = debug::validate(g);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "offsets")) << r.to_string();
}

// ---------------------------------------------------------------- Treap

TEST(ValidateTreap, CleanTreapPasses) {
  Treap t;
  for (std::int64_t k : {5, 1, 9, 3, 7, 2, 8}) t.insert(k);
  const ValidationReport r = debug::validate(t);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidateTreap, CorruptPriorityCaught) {
  Treap t;
  for (std::int64_t k = 0; k < 64; ++k) t.insert(k * 3);
  Treap::Node* root = Access::mutable_root(t);
  ASSERT_NE(root, nullptr);
  root->prio = 0;  // no longer the key hash; with children, heap order breaks
  const ValidationReport r = debug::validate(t);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "prio")) << r.to_string();
}

TEST(ValidateTreap, CorruptKeyBreaksBstOrder) {
  Treap t;
  for (std::int64_t k = 0; k < 64; ++k) t.insert(k);
  Treap::Node* root = Access::mutable_root(t);
  ASSERT_NE(root, nullptr);
  ASSERT_NE(root->left, nullptr);
  root->left->key = root->key + 1000;  // left subtree must stay < root
  const ValidationReport r = debug::validate(t);
  ASSERT_FALSE(r.ok());
}

// --------------------------------------------------------- DynamicGraph

TEST(ValidateDynamicGraph, CleanGraphPasses) {
  const DynamicGraph d =
      DynamicGraph::from_csr(gen::erdos_renyi(150, 600, false, 7),
                             /*promote_threshold=*/4);
  const ValidationReport r = debug::validate(d);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidateDynamicGraph, EdgeCountDriftCaught) {
  DynamicGraph d(4, /*directed=*/false);
  d.insert_edge(0, 1);
  d.insert_edge(1, 2);
  Access::mutable_edge_count(d) += 1;
  const ValidationReport r = debug::validate(d);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "drift") || mentions(r, "edge")) << r.to_string();
}

TEST(ValidateDynamicGraph, MissingMirrorArcCaught) {
  DynamicGraph d(4, /*directed=*/false);
  d.insert_edge(0, 1);
  d.insert_edge(2, 3);
  // Remove 1 from 0's flat adjacency but leave 0 in 1's: asymmetry.
  auto& row = Access::mutable_flat(d)[0];
  ASSERT_EQ(row.size(), 1u);
  row.clear();
  const ValidationReport r = debug::validate(d);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "mirror") || mentions(r, "asym")) << r.to_string();
}

// ------------------------------------------------------------ UnionFind

TEST(ValidateUnionFind, CleanForestPasses) {
  UnionFind uf(10);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(5, 6);
  const ValidationReport r = debug::validate(uf);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidateUnionFind, ParentCycleCaught) {
  UnionFind uf(6);
  uf.unite(0, 1);
  auto& parent = Access::mutable_parent(uf);
  // 2 -> 3 -> 2: a cycle no find() would ever terminate on.
  parent[2] = 3;
  parent[3] = 2;
  const ValidationReport r = debug::validate(uf);
  ASSERT_FALSE(r.ok());
}

TEST(ValidateUnionFind, ParentOutOfRangeCaught) {
  UnionFind uf(4);
  Access::mutable_parent(uf)[1] = 42;
  const ValidationReport r = debug::validate(uf);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "42")) << r.to_string();
}

// ----------------------------------------------------------- Dendrogram

TEST(ValidateDendrogram, CleanMergeSequencePasses) {
  MergeDendrogram d(4);
  d.record_merge(0, 1, 0.1);
  d.record_merge(2, 3, 0.2);
  d.record_merge(0, 2, 0.05);
  const ValidationReport r = debug::validate(d);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidateDendrogram, DuplicateMergeCaught) {
  MergeDendrogram d(4);
  d.record_merge(0, 1, 0.1);
  d.record_merge(1, 0, 0.2);  // already one cluster: not a laminar family
  const ValidationReport r = debug::validate(d);
  ASSERT_FALSE(r.ok());
}

TEST(ValidateDendrogram, RepresentativeOutOfRangeCaught) {
  MergeDendrogram d(3);
  d.record_merge(0, 7, 0.1);
  const ValidationReport r = debug::validate(d);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "7")) << r.to_string();
}

// ------------------------------------------------------------ Community

TEST(ValidateCommunity, ConsistentAssignmentPasses) {
  const CSRGraph g = small_graph();
  const std::vector<vid_t> membership{0, 0, 0, 1, 1, 1};
  const double q = modularity(g, membership);
  const ValidationReport r = debug::validate(g, membership, q);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(ValidateCommunity, LabelGapCaught) {
  const CSRGraph g = small_graph();
  const std::vector<vid_t> membership{0, 0, 0, 2, 2, 2};  // label 1 unused
  const ValidationReport r =
      debug::validate(g, membership, modularity(g, membership));
  ASSERT_FALSE(r.ok());
}

TEST(ValidateCommunity, WrongModularityCaught) {
  const CSRGraph g = small_graph();
  const std::vector<vid_t> membership{0, 0, 0, 1, 1, 1};
  const double q = modularity(g, membership);
  const ValidationReport r = debug::validate(g, membership, q + 0.25);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(mentions(r, "modularity")) << r.to_string();
}

// --------------------------------------------------------- Louvain level

/// The planted-partition fine graph the Louvain mutation tests run on: the
/// planted structure guarantees moves, so the hierarchy has a first level.
CSRGraph louvain_fine_graph() {
  return gen::planted_partition(120, 4, /*deg_in=*/10.0, /*deg_out=*/1.0, 19);
}

TEST(ValidateLouvain, CleanLevelPasses) {
  const CSRGraph g = louvain_fine_graph();
  const LouvainResult r = louvain(g);
  ASSERT_FALSE(r.levels.empty());
  const ValidationReport rep = debug::validate(g, r.levels.front());
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_GT(rep.checks_run, 0u);
}

TEST(ValidateLouvain, CorruptMembershipCaught) {
  const CSRGraph g = louvain_fine_graph();
  LouvainResult r = louvain(g);
  ASSERT_FALSE(r.levels.empty());
  // Point one vertex at a community id past the dense range: the validator
  // must name the out-of-range label (and the volume table now disagrees
  // with the membership too).
  Access::mutable_louvain_membership(r.levels.front())[3] =
      r.levels.front().num_communities() + 7;
  const ValidationReport rep = debug::validate(g, r.levels.front());
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(mentions(rep, "label")) << rep.to_string();
}

TEST(ValidateLouvain, CorruptVolumeTableCaught) {
  const CSRGraph g = louvain_fine_graph();
  LouvainResult r = louvain(g);
  ASSERT_FALSE(r.levels.empty());
  Access::mutable_louvain_volume(r.levels.front())[0] += 5.0;
  const ValidationReport rep = debug::validate(g, r.levels.front());
  ASSERT_FALSE(rep.ok());
  EXPECT_TRUE(mentions(rep, "volume")) << rep.to_string();
}

// -------------------------------------------------------- StreamingGraph

TEST(ValidateStreamingGraph, FreshSnapshotCoherent) {
  stream::StreamingGraph sg(8, /*directed=*/false);
  stream::UpdateBatch b;
  b.insert(0, 1);
  b.insert(1, 2);
  b.insert(2, 2);  // self loop must survive into the snapshot
  sg.apply(b);
  ASSERT_EQ(sg.snapshot().num_edges(), 3);
  const ValidationReport r = debug::validate(sg);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// --------------------------------------------------- check macro plumbing

using ValidatorDeathTest = ::testing::Test;

TEST(ValidatorDeathTest, SnapAssertAbortsWithMessage) {
  EXPECT_DEATH(SNAP_ASSERT(1 + 1 == 3, "arithmetic broke: ", 1 + 1),
               "SNAP_ASSERT.*arithmetic broke");
}

#if SNAP_CHECK_LEVEL >= 1
TEST(ValidatorDeathTest, SnapDcheckAbortsAtLevelOne) {
  EXPECT_DEATH(SNAP_DCHECK(false, "dcheck fired"), "SNAP_DCHECK");
}
#endif

#if SNAP_CHECK_LEVEL >= 2
TEST(ValidatorDeathTest, SnapValidateAbortsOnCorruptGraph) {
  CSRGraph g = small_graph();
  Access::mutable_adj(g)[0] = -5;
  EXPECT_DEATH(SNAP_VALIDATE(g), "SNAP_VALIDATE");
}
#endif

// Disabled tiers must still compile their operands (no -Wunused fallout) and
// never evaluate them.
TEST(ValidatorDeathTest, DisabledTiersDoNotEvaluate) {
#if SNAP_CHECK_LEVEL < 2
  int evaluations = 0;
  SNAP_CHECK_EXPENSIVE([&] {
    ++evaluations;
    return true;
  }(),
                       "never printed");
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "expensive tier enabled at this SNAP_CHECK_LEVEL";
#endif
}

}  // namespace
}  // namespace snap
