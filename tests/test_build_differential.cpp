// Differential harness for the parallel CSR construction pipeline (PR 2):
// random edge lists — duplicates, self loops, weights, directed and
// undirected — built with BuildPath::kParallel at threads {1, 2, 4, 8} must
// produce CSR arrays identical to the retained serial reference builder
// (BuildPath::kSerial).  With sort_adjacency on the comparison is exact
// array equality (the builder's determinism contract); with it off, arc
// order within a vertex is scheduling-dependent, so slices are compared as
// multisets.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "snap/debug/determinism.hpp"
#include "snap/debug/validate.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

/// Messy synthetic input: clustered ids (lots of duplicates), self loops,
/// a mix of weighted and unit-weight edges.
EdgeList messy_edges(vid_t n, std::size_t m, std::uint64_t seed) {
  SplitMix64 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    Edge e;
    if (rng.next_double() < 0.3) {
      // Cluster into a small id range to force parallel edges.
      e.u = static_cast<vid_t>(rng.next_bounded(16));
      e.v = static_cast<vid_t>(rng.next_bounded(16));
    } else {
      e.u = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
      e.v = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    }
    if (rng.next_double() < 0.02) e.v = e.u;  // explicit self loops
    e.w = rng.next_double() < 0.5 ? 1.0
                                  : static_cast<double>(rng.next_bounded(8)) + 0.5;
    edges.push_back(e);
  }
  return edges;
}

void expect_identical(const CSRGraph& got, const CSRGraph& ref) {
  ASSERT_EQ(got.num_vertices(), ref.num_vertices());
  ASSERT_EQ(got.num_edges(), ref.num_edges());
  ASSERT_EQ(got.num_arcs(), ref.num_arcs());
  EXPECT_EQ(got.directed(), ref.directed());
  EXPECT_EQ(got.weighted(), ref.weighted());
  ASSERT_EQ(got.edges().size(), ref.edges().size());
  for (std::size_t e = 0; e < ref.edges().size(); ++e)
    ASSERT_EQ(got.edges()[e], ref.edges()[e]) << "edge " << e;
  for (vid_t v = 0; v < ref.num_vertices(); ++v) {
    ASSERT_EQ(got.arc_begin(v), ref.arc_begin(v)) << "offset " << v;
    ASSERT_EQ(got.arc_end(v), ref.arc_end(v)) << "offset " << v;
  }
  for (eid_t a = 0; a < ref.num_arcs(); ++a) {
    ASSERT_EQ(got.arc_target(a), ref.arc_target(a)) << "adj " << a;
    ASSERT_EQ(got.arc_weight(a), ref.arc_weight(a)) << "weight " << a;
    ASSERT_EQ(got.arc_edge_id(a), ref.arc_edge_id(a)) << "edge id " << a;
  }
}

/// Weaker equivalence for sort_adjacency = false: per-vertex arc slices as
/// multisets of (target, weight, edge id).
void expect_equivalent_slices(const CSRGraph& got, const CSRGraph& ref) {
  ASSERT_EQ(got.num_vertices(), ref.num_vertices());
  ASSERT_EQ(got.num_arcs(), ref.num_arcs());
  using Arc = std::tuple<vid_t, weight_t, eid_t>;
  for (vid_t v = 0; v < ref.num_vertices(); ++v) {
    ASSERT_EQ(got.arc_begin(v), ref.arc_begin(v)) << "offset " << v;
    std::vector<Arc> a, b;
    for (eid_t x = ref.arc_begin(v); x < ref.arc_end(v); ++x) {
      a.emplace_back(got.arc_target(x), got.arc_weight(x), got.arc_edge_id(x));
      b.emplace_back(ref.arc_target(x), ref.arc_weight(x), ref.arc_edge_id(x));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "vertex " << v;
  }
}

using BuildCase = std::tuple<bool /*directed*/, bool /*dedupe*/,
                             bool /*keep self loops*/, int /*threads*/>;

class BuildDifferential : public ::testing::TestWithParam<BuildCase> {};

TEST_P(BuildDifferential, ParallelMatchesSerialReference) {
  const auto [directed, dedupe, keep_loops, threads] = GetParam();
  // Large enough to engage parallel_sort's real sample-sort path (> 1<<14).
  const vid_t n = 700;
  const EdgeList input = messy_edges(n, 50000, 12345);

  BuildOptions ref_opts;
  ref_opts.dedupe = dedupe;
  ref_opts.remove_self_loops = !keep_loops;
  ref_opts.path = BuildPath::kSerial;
  const CSRGraph ref = CSRGraph::from_edges(n, input, directed, ref_opts);

  parallel::ThreadScope scope(threads);
  BuildOptions par_opts = ref_opts;
  par_opts.path = BuildPath::kParallel;
  const CSRGraph got = CSRGraph::from_edges(n, input, directed, par_opts);
  expect_identical(got, ref);
}

TEST_P(BuildDifferential, UnsortedAdjacencyIsEquivalent) {
  const auto [directed, dedupe, keep_loops, threads] = GetParam();
  const vid_t n = 500;
  const EdgeList input = messy_edges(n, 40000, 777);

  BuildOptions ref_opts;
  ref_opts.dedupe = dedupe;
  ref_opts.remove_self_loops = !keep_loops;
  ref_opts.sort_adjacency = false;
  ref_opts.path = BuildPath::kSerial;
  const CSRGraph ref = CSRGraph::from_edges(n, input, directed, ref_opts);

  parallel::ThreadScope scope(threads);
  BuildOptions par_opts = ref_opts;
  par_opts.path = BuildPath::kParallel;
  const CSRGraph got = CSRGraph::from_edges(n, input, directed, par_opts);
  // The logical edge list must still be identical — only arc order varies.
  ASSERT_EQ(got.edges().size(), ref.edges().size());
  for (std::size_t e = 0; e < ref.edges().size(); ++e)
    ASSERT_EQ(got.edges()[e], ref.edges()[e]) << "edge " << e;
  expect_equivalent_slices(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BuildDifferential,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 2, 4, 8)));

// The thread sweep above proves parallel == serial at each t separately;
// this pins the stronger cross-thread-count claim on the shared harness:
// the parallel builder's output arrays hash identically at t = 1, 2, 4, 8.
TEST(BuildDifferentialEdgeCases, ParallelBuildHashesIdenticallyAcrossThreads) {
  const EdgeList edges = messy_edges(2000, 60000, 77);
  for (const bool directed : {false, true}) {
    BuildOptions opts;
    opts.path = BuildPath::kParallel;
    opts.remove_self_loops = false;
    const auto report = debug::check_determinism([&](debug::ByteHasher& h) {
      const CSRGraph g = CSRGraph::from_edges(2000, edges, directed, opts);
      h.value(g.num_edges());
      h.sequence(debug::Access::offsets(g));
      h.sequence(debug::Access::adj(g));
      h.sequence(debug::Access::weights(g));
      h.sequence(debug::Access::arc_edge_ids(g));
    });
    ASSERT_TRUE(report.deterministic)
        << (directed ? "directed: " : "undirected: ") << report.to_string();
  }
}

TEST(BuildDifferentialEdgeCases, OutOfRangeErrorIsDeterministic) {
  // The parallel prepare pass aggregates errors instead of throwing
  // mid-loop; the reported index must be the lowest offending one.
  EdgeList edges = messy_edges(100, 40000, 5);
  edges[20000] = {5, 100, 1.0};  // first bad edge
  edges[30000] = {-1, 3, 1.0};
  parallel::ThreadScope scope(8);
  BuildOptions opts;
  opts.path = BuildPath::kParallel;
  try {
    CSRGraph::from_edges(100, edges, false, opts);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& ex) {
    EXPECT_NE(std::string(ex.what()).find("input edge 20000"),
              std::string::npos)
        << ex.what();
  }
}

TEST(BuildDifferentialEdgeCases, EmptyAndTinyInputs) {
  parallel::ThreadScope scope(8);
  BuildOptions opts;
  opts.path = BuildPath::kParallel;
  const CSRGraph empty = CSRGraph::from_edges(0, {}, false, opts);
  EXPECT_EQ(empty.num_vertices(), 0);
  EXPECT_EQ(empty.num_edges(), 0);
  const CSRGraph lone = CSRGraph::from_edges(3, {{0, 1, 1.0}}, false, opts);
  EXPECT_EQ(lone.num_edges(), 1);
  EXPECT_TRUE(lone.has_edge(1, 0));
}

TEST(BuildDifferentialEdgeCases, DedupeKeepsSmallestWeight) {
  // The documented dedupe rule: among parallel edges the smallest weight
  // wins, identically on both build paths.
  EdgeList edges;
  for (int i = 0; i < 3; ++i) edges.push_back({0, 1, 5.0 - i});
  for (const BuildPath path : {BuildPath::kSerial, BuildPath::kParallel}) {
    parallel::ThreadScope scope(4);
    BuildOptions opts;
    opts.path = path;
    const CSRGraph g = CSRGraph::from_edges(2, edges, false, opts);
    ASSERT_EQ(g.num_edges(), 1);
    EXPECT_DOUBLE_EQ(g.edges()[0].w, 3.0);
  }
}

}  // namespace
}  // namespace snap
