// Tests for the attribute tables (§1's typed/classified vertices & edges)
// and for weighted betweenness centrality.
#include <gtest/gtest.h>

#include "snap/centrality/betweenness.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/attributes.hpp"
#include "snap/graph/subgraph.hpp"
#include "snap/util/rng.hpp"

namespace snap {
namespace {

// -------------------------------------------------------------- attributes

TEST(Attributes, ColumnsLifecycle) {
  AttributeTable t(5);
  t.add_int_column("type", -1);
  t.add_real_column("score", 0.5);
  t.add_text_column("label", "?");
  EXPECT_TRUE(t.has_column("type"));
  EXPECT_EQ(t.type_of("score"), AttributeTable::Type::kReal);
  EXPECT_EQ(t.column_names().size(), 3u);
  EXPECT_TRUE(t.remove_column("label"));
  EXPECT_FALSE(t.remove_column("label"));
  EXPECT_FALSE(t.has_column("label"));
}

TEST(Attributes, DefaultsApplied) {
  AttributeTable t(3);
  t.add_int_column("k", 7);
  for (std::int64_t v : t.ints("k")) EXPECT_EQ(v, 7);
  t.add_text_column("name", "x");
  EXPECT_EQ(t.texts("name")[2], "x");
}

TEST(Attributes, ResizeFillsWithDefault) {
  AttributeTable t(2);
  t.add_real_column("w", 1.5);
  t.reals("w")[0] = 9.0;
  t.resize(4);
  EXPECT_DOUBLE_EQ(t.reals("w")[0], 9.0);
  EXPECT_DOUBLE_EQ(t.reals("w")[3], 1.5);
  t.resize(1);
  EXPECT_EQ(t.reals("w").size(), 1u);
}

TEST(Attributes, DuplicateNameThrows) {
  AttributeTable t(1);
  t.add_int_column("a");
  EXPECT_THROW(t.add_real_column("a"), std::invalid_argument);
}

TEST(Attributes, TypeMismatchThrows) {
  AttributeTable t(1);
  t.add_int_column("a");
  EXPECT_THROW((void)t.reals("a"), std::invalid_argument);
  EXPECT_THROW((void)t.ints("nope"), std::out_of_range);
}

TEST(Attributes, SelectDrivesSubgraphExtraction) {
  // The §1 workflow: classify vertices, select a class, induce a subgraph.
  const auto g = gen::barbell_graph(4);
  AttributeTable vattr(static_cast<std::size_t>(g.num_vertices()));
  vattr.add_int_column("side", 0);
  for (vid_t v = 4; v < 8; ++v) vattr.ints("side")[v] = 1;
  const auto right = vattr.select_int_eq("side", 1);
  EXPECT_EQ(right.size(), 4u);
  const Subgraph sub = induced_subgraph(g, right);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.graph.num_edges(), 6);  // the K4, bridge dropped
}

// ---------------------------------------------------- weighted betweenness

TEST(WeightedBC, UnweightedFallbackMatchesPlainBrandes) {
  const auto g = gen::karate_club();
  const auto w = weighted_betweenness_centrality(g);
  const auto plain = betweenness_centrality(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(w.vertex[v], plain.vertex[v], 1e-9);
}

TEST(WeightedBC, WeightsRerouteShortestPaths) {
  // Square 0-1-2-3-0.  Unweighted: two equal paths between opposite
  // corners.  Making edges (0,1),(1,2) cheap routes everything through 1.
  const EdgeList edges{{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 4.0}, {0, 3, 4.0}};
  const auto g = CSRGraph::from_edges(4, edges, false);
  const auto bc = weighted_betweenness_centrality(g);
  // d(0,2) = 2 via 1; d(1,3) = 5 via 0 or 2 (tie); d(0,3)=4 direct.
  EXPECT_DOUBLE_EQ(bc.vertex[1], 1.0);   // carries the (0,2) pair
  EXPECT_DOUBLE_EQ(bc.vertex[0], 0.5);   // half of the tied (1,3) pair
  EXPECT_DOUBLE_EQ(bc.vertex[2], 0.5);
}

TEST(WeightedBC, EqualWeightsMatchUnweighted) {
  // All weights 3.0: same shortest-path structure as unweighted.
  SplitMix64 rng(4);
  EdgeList edges;
  for (int i = 0; i < 300; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(80));
    const auto v = static_cast<vid_t>(rng.next_bounded(80));
    if (u != v) edges.push_back({u, v, 3.0});
  }
  const auto g = CSRGraph::from_edges(80, edges, false);
  EdgeList unit = edges;
  for (auto& e : unit) e.w = 1.0;
  const auto gu = CSRGraph::from_edges(80, unit, false);
  const auto w = weighted_betweenness_centrality(g);
  const auto u = betweenness_centrality(gu);
  for (vid_t v = 0; v < 80; ++v)
    EXPECT_NEAR(w.vertex[v], u.vertex[v], 1e-6) << v;
  for (eid_t e = 0; e < g.num_edges(); ++e)
    EXPECT_NEAR(w.edge[static_cast<std::size_t>(e)],
                u.edge[static_cast<std::size_t>(e)], 1e-6);
}

TEST(WeightedBC, DirectedWeightedPath) {
  const EdgeList edges{{0, 1, 2.0}, {1, 2, 3.0}};
  const auto g = CSRGraph::from_edges(3, edges, /*directed=*/true);
  const auto bc = weighted_betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc.vertex[1], 1.0);
  EXPECT_DOUBLE_EQ(bc.vertex[0], 0.0);
}

}  // namespace
}  // namespace snap
