// Exploratory analysis of a web-crawl-like directed network (the NDwww
// instance class of Table 3): peel the k-core structure to find the dense
// nucleus, classify pages with attribute columns, and rank the nucleus by
// betweenness — the §3 "systematic computational study ... using a
// discriminating selection of topological metrics" workflow end to end.
//
//   ./web_crawl_analysis
#include <algorithm>
#include <cstdio>

#include "snap/centrality/betweenness.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/attributes.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/graph/subgraph.hpp"
#include "snap/kernels/kcore.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/metrics/path_length.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snap;

  // NDwww-like synthetic: power-law directed crawl, folded to undirected
  // for the structural analysis (as §5 does).
  gen::RmatParams p;
  p.scale = 15;
  p.edge_factor = 4;
  p.directed = true;
  p.seed = 13;
  const CSRGraph crawl = gen::rmat(p);
  const CSRGraph g = crawl.as_undirected();
  std::printf("web crawl: n=%lld pages, m=%lld links\n\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  // 1. k-core decomposition: the degeneracy nucleus of a crawl is its
  //    densely-linked center; pendant trees (1-core shell) dominate counts.
  WallTimer t;
  const KCoreResult kc = kcore_decomposition(g);
  std::printf("k-core peeling (%.2fs): degeneracy %lld\n", t.elapsed_s(),
              static_cast<long long>(kc.degeneracy));
  for (eid_t k : {eid_t{1}, eid_t{2}, kc.degeneracy / 2, kc.degeneracy}) {
    if (k < 1) continue;
    std::printf("  vertices with core >= %-4lld : %zu\n",
                static_cast<long long>(k), kc.shell_at_least(k).size());
  }

  // 2. Attribute classification: tag each page with its shell, then select
  //    the nucleus for focused analysis (§1's typed-vertex workflow).
  AttributeTable pages(static_cast<std::size_t>(g.num_vertices()));
  pages.add_int_column("core", 0);
  pages.add_text_column("tier", "periphery");
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    pages.ints("core")[static_cast<std::size_t>(v)] =
        kc.core[static_cast<std::size_t>(v)];
    if (kc.core[static_cast<std::size_t>(v)] >= kc.degeneracy / 2)
      pages.texts("tier")[static_cast<std::size_t>(v)] = "nucleus";
  }
  std::vector<vid_t> nucleus;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (pages.texts("tier")[static_cast<std::size_t>(v)] == "nucleus")
      nucleus.push_back(v);
  const Subgraph core_sub = induced_subgraph(g, nucleus);
  std::printf("\nnucleus (core >= %lld): %lld pages, %lld links, density "
              "%.4f vs whole-crawl %.6f\n",
              static_cast<long long>(kc.degeneracy / 2),
              static_cast<long long>(core_sub.graph.num_vertices()),
              static_cast<long long>(core_sub.graph.num_edges()),
              average_degree(core_sub.graph) /
                  std::max<double>(1, core_sub.graph.num_vertices() - 1),
              average_degree(g) / std::max<double>(1, g.num_vertices() - 1));

  // 3. Exact betweenness on the (small) nucleus — affordable because the
  //    peeling shrank the instance by orders of magnitude.
  t.reset();
  const auto bc = betweenness_centrality(core_sub.graph);
  std::vector<vid_t> idx(bc.vertex.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<vid_t>(i);
  const std::size_t top = std::min<std::size_t>(5, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::int64_t>(top),
                    idx.end(), [&](vid_t a, vid_t b) {
                      return bc.vertex[static_cast<std::size_t>(a)] >
                             bc.vertex[static_cast<std::size_t>(b)];
                    });
  std::printf("\ntop nucleus brokers by betweenness (%.2fs):\n", t.elapsed_s());
  for (std::size_t i = 0; i < top; ++i)
    std::printf("  page %lld  (core %lld, BC %.3g)\n",
                static_cast<long long>(
                    core_sub.to_parent[static_cast<std::size_t>(idx[i])]),
                static_cast<long long>(
                    kc.core[static_cast<std::size_t>(
                        core_sub.to_parent[static_cast<std::size_t>(idx[i])])]),
                bc.vertex[static_cast<std::size_t>(idx[i])]);

  // 4. Cache-layout experiment: hub-first relabeling (§3's data-layout
  //    theme) and its effect on a BFS-heavy metric pass.
  t.reset();
  const PathLengthStats before = sampled_path_length(g, 24, 7);
  const double t_before = t.elapsed_s();
  const ReorderedGraph ord = relabel_by_degree(g);
  t.reset();
  const PathLengthStats after = sampled_path_length(ord.graph, 24, 7);
  const double t_after = t.elapsed_s();
  std::printf("\nhub-first relabeling: sampled path-length pass %.2fs -> "
              "%.2fs (avg path %.2f vs %.2f; the sampler picks different\n"
              "source ids after relabeling, the structure is identical)\n",
              t_before, t_after, before.average, after.average);
  return 0;
}
