// Streaming updates on the dynamic graph representation (§3, "Data
// Representation"): low-degree adjacencies live in flat resizable arrays,
// high-degree adjacencies get promoted to treaps, and the structure absorbs
// interleaved insertions/deletions while answering connectivity queries.
//
//   ./dynamic_updates
#include <cstdio>

#include "snap/graph/dynamic_graph.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/stream/observers.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snap;

  const vid_t n = 50000;
  DynamicGraph dyn(n, /*directed=*/false, /*promote_threshold=*/64);
  SplitMix64 rng(2026);

  // Phase 1: stream in a skewed edge workload — a few celebrity vertices
  // attract most edges, exactly the distribution the hybrid layout targets.
  WallTimer t;
  eid_t inserted = 0;
  for (int i = 0; i < 400000; ++i) {
    const bool hub_edge = rng.next_bounded(4) == 0;  // 25% hit a hub
    const auto u = static_cast<vid_t>(
        hub_edge ? rng.next_bounded(16) : rng.next_bounded(n));
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (u != v && dyn.insert_edge(u, v)) ++inserted;
  }
  std::printf("inserted %lld edges in %.2fs\n",
              static_cast<long long>(inserted), t.elapsed_s());

  vid_t promoted = 0;
  eid_t promoted_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (dyn.is_promoted(v)) {
      ++promoted;
      promoted_degree += dyn.degree(v);
    }
  }
  std::printf("%lld vertices promoted to treap adjacencies "
              "(avg degree %lld; flat-array vertices stay tiny)\n\n",
              static_cast<long long>(promoted),
              static_cast<long long>(promoted ? promoted_degree / promoted
                                              : 0));

  // Phase 2: churn — delete a third of what we look up, reinsert others.
  t.reset();
  eid_t deleted = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(16));  // hub-heavy
    const auto v = static_cast<vid_t>(rng.next_bounded(n));
    if (dyn.has_edge(u, v) && rng.next_bounded(3) == 0) {
      dyn.delete_edge(u, v);
      ++deleted;
    }
  }
  std::printf("churn phase: %lld deletions in %.2fs (treap deletes are "
              "O(log d))\n\n",
              static_cast<long long>(deleted), t.elapsed_s());

  // Phase 3: snapshot to CSR for the static analysis kernels.
  t.reset();
  const CSRGraph snapshot = dyn.to_csr();
  const Components comps = connected_components(snapshot);
  std::printf("snapshot to CSR: n=%lld m=%lld, %lld components "
              "(giant %lld) in %.2fs\n",
              static_cast<long long>(snapshot.num_vertices()),
              static_cast<long long>(snapshot.num_edges()),
              static_cast<long long>(comps.count),
              static_cast<long long>(
                  comps.sizes()[static_cast<std::size_t>(comps.giant())]),
              t.elapsed_s());
  std::printf(
      "\nPattern: ingest and churn on the dynamic hybrid structure, then\n"
      "snapshot to CSR whenever a batch of static analysis is due.\n\n");

  // Phase 4: the batched engine — wrap the dynamic graph in a
  // StreamingGraph, attach incremental analytics, and apply updates in
  // parallel batches instead of one edge at a time.
  stream::StreamingGraph sg(std::move(dyn));
  stream::ComponentsObserver comps_obs(sg.graph());
  stream::DegreeStatsObserver deg_obs(sg.graph());
  sg.add_observer(&comps_obs);
  sg.add_observer(&deg_obs);

  t.reset();
  eid_t batched_inserts = 0;
  for (int b = 0; b < 10; ++b) {
    stream::UpdateBatch batch;
    for (int i = 0; i < 20000; ++i) {
      const auto u = static_cast<vid_t>(rng.next_bounded(n));
      const auto v = static_cast<vid_t>(rng.next_bounded(n));
      if (rng.next_bounded(5) == 0)
        batch.erase(u, v, static_cast<std::uint64_t>(i));
      else
        batch.insert(u, v, static_cast<std::uint64_t>(i));
    }
    batched_inserts += static_cast<eid_t>(sg.apply(batch).applied_inserts);
  }
  std::printf(
      "streaming engine: 10 batches x 20k updates in %.2fs "
      "(%lld effective inserts)\n",
      t.elapsed_s(), static_cast<long long>(batched_inserts));
  std::printf(
      "maintained analytics: %lld components, max degree %lld — no\n"
      "from-scratch recomputation, observers updated per batch.\n\n",
      static_cast<long long>(comps_obs.num_components()),
      static_cast<long long>(deg_obs.max_degree()));

  // Phase 5: concurrent readers via pinned epoch snapshots.  pin() hands
  // out a refcounted, immutable CSR image of the current epoch; in eager
  // mode every apply() publishes the next image, so any number of reader
  // threads can analyze pinned epochs while the writer keeps streaming —
  // snapshot isolation with RCU-style reclamation (a superseded epoch is
  // freed when its last pin drops).  This is exactly the concurrency model
  // the analytics daemon serves over HTTP: `snap-cli serve` wraps a
  // StreamingGraph like this one behind POST /ingest and per-snapshot
  // query endpoints — see docs/SERVICE.md.
  sg.set_eager_snapshots(true);
  const stream::SnapshotHandle before = sg.pin();
  stream::UpdateBatch batch;
  for (int i = 0; i < 1000; ++i)
    batch.insert(static_cast<vid_t>(rng.next_bounded(n)),
                 static_cast<vid_t>(rng.next_bounded(n)));
  sg.apply(batch);
  const stream::SnapshotHandle after = sg.pin();
  std::printf(
      "pinned snapshots: epoch %llu holds m=%lld while epoch %llu sees "
      "m=%lld\n(readers keep consistent images; the writer never waits)\n",
      static_cast<unsigned long long>(before->epoch()),
      static_cast<long long>(before->graph().num_edges()),
      static_cast<unsigned long long>(after->epoch()),
      static_cast<long long>(after->graph().num_edges()));
  return 0;
}
