// Centrality analysis of a protein-interaction-style network — the §3 /
// HiCOMB use case: find the hubs, the brokers (high betweenness), and the
// articulation points whose loss disconnects the network, then check the
// paper's observation that low-degree articulation points are the
// interesting ones.
//
//   ./centrality_analysis
#include <algorithm>
#include <cstdio>
#include <vector>

#include "snap/centrality/approx_betweenness.hpp"
#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/closeness.hpp"
#include "snap/centrality/degree.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snap;

  // PPI-like instance: power-law degrees at the human-interactome scale.
  gen::RmatParams p;
  p.scale = 13;  // 8,192 ≈ the paper's 8,503-protein network
  p.m = 32191;
  p.seed = 7;
  const CSRGraph g = gen::rmat(p);
  std::printf("protein-interaction-like network: n=%lld m=%lld\n\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  auto top5 = [&](const std::vector<double>& score, const char* label) {
    std::vector<vid_t> idx(score.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<vid_t>(i);
    std::partial_sort(idx.begin(), idx.begin() + 5, idx.end(),
                      [&](vid_t a, vid_t b) { return score[a] > score[b]; });
    std::printf("%s:", label);
    for (int i = 0; i < 5; ++i)
      std::printf("  v%lld (%.3g)", static_cast<long long>(idx[i]),
                  score[static_cast<std::size_t>(idx[i])]);
    std::printf("\n");
  };

  WallTimer t;
  top5(degree_centrality(g), "top degree       ");
  std::printf("  [degree: %.2fs]\n", t.elapsed_s());

  t.reset();
  top5(closeness_centrality_sampled(g, 256, 1), "top closeness    ");
  std::printf("  [closeness (sampled): %.2fs]\n", t.elapsed_s());

  t.reset();
  const BetweennessScores bc = betweenness_centrality(g);
  top5(bc.vertex, "top betweenness  ");
  std::printf("  [exact betweenness: %.2fs]\n\n", t.elapsed_s());

  // Adaptive sampling estimate for the top-betweenness vertex: the paper's
  // claim is <20% error from ~5% of the sources for top-1% entities.
  const auto champion = static_cast<vid_t>(
      std::max_element(bc.vertex.begin(), bc.vertex.end()) -
      bc.vertex.begin());
  t.reset();
  AdaptiveBCParams ap;
  ap.seed = 3;
  const auto est = adaptive_betweenness_vertex(g, champion, ap);
  const double exact = bc.vertex[static_cast<std::size_t>(champion)];
  std::printf("adaptive estimate for v%lld: %.0f vs exact %.0f "
              "(%.1f%% error, %lld/%lld sources, %.2fs)\n\n",
              static_cast<long long>(champion), est.estimate, exact,
              100.0 * std::abs(est.estimate - exact) / exact,
              static_cast<long long>(est.samples_used),
              static_cast<long long>(g.num_vertices()), t.elapsed_s());

  // Biconnected preprocessing: articulation proteins and bridges.
  const BiconnectedResult bcc = biconnected_components(g);
  const auto arts = bcc.articulation_points();
  eid_t low_degree_arts = 0;
  for (vid_t v : arts)
    if (g.degree(v) <= 3) ++low_degree_arts;
  std::printf("articulation points: %zu (%lld of them low-degree)\n",
              arts.size(), static_cast<long long>(low_degree_arts));
  std::printf("bridges: %zu, biconnected components: %lld\n",
              bcc.bridges().size(),
              static_cast<long long>(bcc.num_bicomps));
  std::printf(
      "\n§3: low-degree articulation points in PPI networks are unlikely to\n"
      "be essential — biconnected decomposition finds them in linear time,\n"
      "orders of magnitude cheaper than centrality ranking.\n");
  return 0;
}
