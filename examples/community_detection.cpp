// Community detection on a collaboration-style network: runs the paper's
// three parallel algorithms (pBD, pMA, pLA) plus the Girvan–Newman baseline
// and compares modularity, cluster counts and runtime — a miniature of the
// paper's Table 2 workflow, on a graph with known ground truth.
//
//   ./community_detection [n] [communities]
#include <cstdio>
#include <cstdlib>

#include "snap/community/gn.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/metrics/metrics.hpp"

namespace {

using namespace snap;

/// Fraction of vertex pairs on which clustering and ground truth agree.
double agreement(const std::vector<vid_t>& got,
                 const std::vector<vid_t>& truth) {
  std::int64_t same = 0, total = 0;
  for (std::size_t i = 0; i < got.size(); ++i)
    for (std::size_t j = i + 1; j < got.size(); ++j) {
      same += ((got[i] == got[j]) == (truth[i] == truth[j]));
      ++total;
    }
  return static_cast<double>(same) / static_cast<double>(total);
}

void report(const char* name, const CommunityResult& r,
            const std::vector<vid_t>& truth) {
  std::printf("%-28s q=%.3f  clusters=%-5lld  truth-agreement=%.3f  %.2fs\n",
              name, r.modularity,
              static_cast<long long>(r.clustering.num_clusters),
              agreement(r.clustering.membership, truth), r.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const vid_t n = argc > 1 ? std::atoll(argv[1]) : 800;
  const vid_t k = argc > 2 ? std::atoll(argv[2]) : 8;

  // A collaboration network: k working groups, dense inside, sparse across.
  std::vector<vid_t> truth;
  const auto g = snap::gen::planted_partition(n, k, 10.0, 1.0, 42, &truth);
  std::printf("collaboration network: n=%lld m=%lld, %lld planted groups\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(k));
  std::printf("ground-truth modularity: %.3f\n\n",
              snap::modularity(g, truth));

  // Exploratory metrics first — §3: assortativity and clustering flag
  // community structure before we pick an algorithm.
  std::printf("clustering coefficient %.3f, assortativity %+.3f\n\n",
              snap::average_clustering_coefficient(g),
              snap::assortativity_coefficient(g));

  // The Girvan–Newman baseline (exact edge betweenness each iteration).
  snap::DivisiveParams stop;
  stop.stall_iterations = g.num_edges() / 4;
  report("Girvan-Newman (baseline)", snap::girvan_newman(g, stop), truth);

  // pBD: approximate-betweenness divisive (Algorithm 1).
  snap::PBDParams bp;
  bp.stop = stop;
  report("pBD (divisive, approx BC)", snap::pbd(g, bp), truth);

  // pMA: greedy agglomerative on SNAP structures (Algorithm 2).
  report("pMA (agglomerative)", snap::pma(g), truth);

  // pLA: greedy local aggregation (Algorithm 3), both local metrics.
  report("pLA (local, degree metric)", snap::pla(g), truth);
  snap::PLAParams lp;
  lp.metric = snap::PLAMetric::kClusteringCoeff;
  report("pLA (local, clustering metric)", snap::pla(g, lp), truth);

  std::printf(
      "\nExpected pattern (paper §5): pBD tracks GN's quality at a fraction\n"
      "of the cost; pMA and pLA are faster still with a small quality gap.\n");
  return 0;
}
