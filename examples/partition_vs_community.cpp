// Partitioning vs community detection — the §2.2 argument, runnable:
// balanced edge-cut partitioning works beautifully on physical topologies
// and falls apart on small-world networks, where modularity-based community
// detection is the right tool.
//
//   ./partition_vs_community
#include <cstdio>

#include "snap/community/modularity.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/partition/eval.hpp"
#include "snap/partition/multilevel.hpp"
#include "snap/partition/spectral.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;

void study(const char* name, const CSRGraph& g, std::int32_t k) {
  std::printf("--- %s (n=%lld, m=%lld), %d-way ---\n", name,
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()), k);

  WallTimer t;
  const auto ml = multilevel_kway(g, k);
  std::printf("  multilevel k-way   cut=%-8lld balance=%.2f  (%.1fs)\n",
              static_cast<long long>(ml.edge_cut), ml.imbalance,
              t.elapsed_s());

  t.reset();
  const auto sp = spectral_partition(g, k, SpectralMethod::kLanczos);
  if (sp.success) {
    std::printf("  spectral (Lanczos) cut=%-8lld balance=%.2f  (%.1fs)\n",
                static_cast<long long>(sp.edge_cut), sp.imbalance,
                t.elapsed_s());
  } else {
    std::printf("  spectral (Lanczos) FAILED: %s\n", sp.note.c_str());
  }

  // What fraction of edges did the balanced partition cut?
  std::printf("  cut fraction: %.1f%% of all edges\n",
              100.0 * static_cast<double>(ml.edge_cut) /
                  static_cast<double>(g.num_edges()));

  // Modularity view of the same graph.
  t.reset();
  const auto comm = pma(g);
  std::vector<vid_t> as_clusters(ml.part.begin(), ml.part.end());
  std::printf("  modularity: balanced partition %.3f vs pMA communities "
              "%.3f in %lld clusters (%.1fs)\n\n",
              modularity(g, as_clusters), comm.modularity,
              static_cast<long long>(comm.clustering.num_clusters),
              t.elapsed_s());
}

}  // namespace

int main() {
  using namespace snap;
  std::printf("Partitioning vs community detection (§2.2, Table 1 in"
              " miniature)\n\n");

  // A physical (road) topology: nearly Euclidean, constant degrees.
  study("road network", gen::grid_road(120, 120), 8);

  // A small-world network of the same order: skewed degrees, low diameter.
  study("small-world network",
        [] {
          gen::RmatParams p;
          p.scale = 14;
          p.edge_factor = 4;
          return gen::rmat(p);
        }(),
        8);

  std::printf(
      "Expected: the road cut is a tiny fraction of m and both partitioners\n"
      "agree; the small-world cut approaches m itself — balanced edge cut is\n"
      "the wrong objective there, and modularity-based clustering (pMA) finds\n"
      "the latent structure instead.\n");
  return 0;
}
