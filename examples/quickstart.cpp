// Quickstart: build a graph, traverse it, compute structural metrics, and
// detect communities — the five-minute tour of the SNAP public API.
//
//   ./quickstart [edge_list_file]
//
// With no argument it generates a small synthetic small-world network.
#include <cstdio>

#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/io/edge_list_io.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace snap;

  // 1. Get a graph: from a file, or generate an R-MAT small-world instance.
  CSRGraph g;
  if (argc > 1) {
    g = io::read_edge_list_graph(argv[1], /*directed=*/false);
    std::printf("loaded %s\n", argv[1]);
  } else {
    gen::RmatParams p;
    p.scale = 13;       // 8,192 vertices
    p.edge_factor = 6;  // ~49k edges
    g = gen::rmat(p);
    std::printf("generated an R-MAT small-world graph\n");
  }
  std::printf("n = %lld vertices, m = %lld edges\n\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  // 2. Structural summary (degree skew, clustering, components, distances).
  const GraphSummary s = summarize(g);
  std::printf("average degree        %.2f\n", s.avg_degree);
  std::printf("max degree            %lld\n",
              static_cast<long long>(s.max_degree));
  std::printf("clustering coeff      %.4f\n", s.avg_clustering);
  std::printf("assortativity         %+.4f\n", s.assortativity);
  std::printf("connected components  %lld (giant: %lld vertices)\n",
              static_cast<long long>(s.num_components),
              static_cast<long long>(s.giant_component_size));
  std::printf("avg shortest path     %.2f hops (sampled)\n",
              s.approx_avg_path_length);
  std::printf("diameter (approx)     %lld\n\n",
              static_cast<long long>(s.approx_diameter));

  // 3. Parallel BFS from the highest-degree vertex.
  vid_t hub = 0;
  for (vid_t v = 1; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  const BFSResult bfs_result = bfs(g, hub);
  std::printf("BFS from hub %lld reaches %lld vertices in %lld levels\n\n",
              static_cast<long long>(hub),
              static_cast<long long>(bfs_result.num_visited),
              static_cast<long long>(bfs_result.num_levels));

  // 4. Community detection (greedy agglomerative pMA; see the
  //    community_detection example for the full algorithm menu).
  const CommunityResult comm = pma(g);
  std::printf("pMA found %lld communities, modularity q = %.3f (%.2fs)\n",
              static_cast<long long>(comm.clustering.num_clusters),
              comm.modularity, comm.seconds);
  std::printf("%s (q > 0.3 is the usual significance bar, §2.3).\n",
              comm.modularity > 0.3 ? "Significant community structure"
                                    : "Weak community structure");
  return 0;
}
