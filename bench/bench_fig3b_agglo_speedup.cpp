// Figure 3(b) reproduction: parallel speedup of pMA and pLA at the full
// thread count for the Table 3 instances (paper: pLA slightly higher in
// most cases, running times comparable).
#include <cstdio>

#include "bench_common.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snap;
  using namespace snapbench;
  print_header("Figure 3(b): parallel speedup of pMA and pLA");

  // Each instance runs pMA and pLA twice (single-thread baseline + full
  // thread count), so use a further-reduced copy of the Table 3 catalogue.
  const auto datasets = table3_datasets(/*include_actor=*/false,
                                        /*extra=*/0.2);
  const int pmax = max_threads();

  std::printf("%-10s | %11s %11s %8s | %11s %11s %8s\n", "Instance",
              "pMA 1t (s)", "pMA pt (s)", "speedup", "pLA 1t (s)",
              "pLA pt (s)", "speedup");
  for (const auto& d : datasets) {
    const CSRGraph g = d.graph.directed() ? d.graph.as_undirected() : d.graph;
    double ma1, map, la1, lap;
    {
      parallel::ThreadScope scope(1);
      WallTimer w;
      (void)pma(g);
      ma1 = w.elapsed_s();
      w.reset();
      (void)pla(g);
      la1 = w.elapsed_s();
    }
    {
      parallel::ThreadScope scope(pmax);
      WallTimer w;
      (void)pma(g);
      map = w.elapsed_s();
      w.reset();
      (void)pla(g);
      lap = w.elapsed_s();
    }
    std::printf("%-10s | %11.2f %11.2f %8.2f | %11.2f %11.2f %8.2f\n",
                d.label.c_str(), ma1, map, ma1 / map, la1, lap, la1 / lap);
  }
  std::printf(
      "\nPaper shape at 32 T2000 threads: both speed up well; pLA achieves a\n"
      "slightly higher speedup on most instances, with comparable runtimes.\n");
  return 0;
}
