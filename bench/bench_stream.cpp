// Streaming-update throughput bench: updates/second for batched parallel
// application (StreamingGraph::apply) across batch sizes {1k, 10k, 100k} and
// a thread sweep, insert-only and 80/20 insert/delete mixed streams, against
// the serial one-edge-at-a-time reference (a raw DynamicGraph
// insert_edge/delete_edge loop in stream order).
//
//   bench_stream [--smoke] [--json out.json]
//
// --smoke shrinks the base graph and the per-configuration update volume so
// CI can run this as a smoke step, but keeps the 100k-update batch and the
// 8-thread point: the JSON records a "speedup" entry for batched parallel at
// the top thread count vs the serial single-edge loop on the largest batch.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/graph/dynamic_graph.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace {

using snap::DynamicGraph;
using snap::stream::StreamingGraph;
using snap::stream::UpdateBatch;
using snap::stream::UpdateKind;
using snap::stream::UpdateRecord;
using snapbench::JsonReport;

std::vector<UpdateRecord> make_records(snap::vid_t n, std::size_t count,
                                       int delete_pct, std::uint64_t seed) {
  snap::SplitMix64 rng(seed);
  std::vector<UpdateRecord> recs;
  recs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<snap::vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<snap::vid_t>(
        rng.next_bounded(static_cast<std::uint64_t>(n)));
    const UpdateKind kind =
        rng.next_bounded(100) < static_cast<std::uint64_t>(delete_pct)
            ? UpdateKind::kDelete
            : UpdateKind::kInsert;
    recs.push_back({u, v, static_cast<std::uint64_t>(i), kind});
  }
  return recs;
}

/// Batched path: records partitioned into batches of `batch_size`, each
/// applied through StreamingGraph::apply at the ambient thread count.  Batch
/// assembly is stream ingestion — both paths consume the same pre-built
/// records, so only application is timed.
double run_batched(const snap::CSRGraph& base,
                   const std::vector<UpdateRecord>& recs,
                   std::size_t batch_size) {
  std::vector<UpdateBatch> batches;
  std::size_t at = 0;
  while (at < recs.size()) {
    const std::size_t hi = std::min(at + batch_size, recs.size());
    UpdateBatch& batch = batches.emplace_back();
    for (std::size_t i = at; i < hi; ++i) {
      const UpdateRecord& r = recs[i];
      if (r.kind == UpdateKind::kInsert)
        batch.insert(r.u, r.v, r.time);
      else
        batch.erase(r.u, r.v, r.time);
    }
    at = hi;
  }
  StreamingGraph sg(DynamicGraph::from_csr(base));
  snap::WallTimer timer;
  for (const UpdateBatch& batch : batches) sg.apply(batch);
  return timer.elapsed_s();
}

/// The reference everything is measured against: one edge at a time, in
/// stream order, straight into the dynamic graph.
double run_serial_single_edge(const snap::CSRGraph& base,
                              const std::vector<UpdateRecord>& recs) {
  DynamicGraph g = DynamicGraph::from_csr(base);
  snap::WallTimer timer;
  for (const UpdateRecord& r : recs) {
    if (r.kind == UpdateKind::kInsert)
      g.insert_edge(r.u, r.v);
    else
      g.delete_edge(r.u, r.v);
  }
  return timer.elapsed_s();
}

double ups(std::size_t updates, double seconds) {
  return seconds > 0 ? static_cast<double>(updates) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = snapbench::has_flag(argc, argv, "--smoke");
  JsonReport report("bench_stream",
                    snapbench::flag_value(argc, argv, "--json"));
  snapbench::print_header(
      "Streaming updates: batched parallel vs serial single-edge (updates/s)");

  // Base graph the stream mutates; the update volume per configuration keeps
  // the largest batch size exercised even in smoke mode.
  std::string corpus_name;
  snap::CSRGraph corpus_graph;
  const bool use_corpus = snapbench::corpus_from_flags(
      argc, argv, &corpus_name, &corpus_graph);
  const snap::vid_t n =
      use_corpus ? corpus_graph.num_vertices() : (smoke ? (1 << 15) : (1 << 17));
  const snap::eid_t m = 16 * static_cast<snap::eid_t>(n);
  const snap::CSRGraph base = use_corpus
                                  ? std::move(corpus_graph)
                                  : snapbench::rmat_fold(n, m, false, 77);
  const std::size_t total_updates = smoke ? 200000 : 800000;

  const std::vector<std::size_t> batch_sizes = {1000, 10000, 100000};
  std::vector<int> threads;
  for (int t = 1; t <= std::min(8, snapbench::max_threads()); t *= 2)
    threads.push_back(t);
  const int top_threads = threads.back();

  struct Mode {
    const char* label;
    int delete_pct;
  };
  const Mode modes[] = {{"insert_only", 0}, {"mixed_80_20", 20}};

  for (const Mode& mode : modes) {
    const auto recs = make_records(n, total_updates, mode.delete_pct, 13);
    std::printf("\n-- %s (n=%lld, m=%lld, %zu updates) --\n", mode.label,
                static_cast<long long>(n), static_cast<long long>(m),
                recs.size());

    const double serial_s = run_serial_single_edge(base, recs);
    std::printf("%-24s %12.3fs %14.0f updates/s\n", "serial single-edge",
                serial_s, ups(recs.size(), serial_s));
    report.record("rmat_fold", {{"mode", mode.label}}, 1,
                  "serial_single_edge", serial_s, ups(recs.size(), serial_s));

    double top_batched_s = 0;
    for (const std::size_t bs : batch_sizes) {
      for (const int t : threads) {
        snap::parallel::ThreadScope scope(t);
        const double s = run_batched(base, recs, bs);
        std::printf("batch=%-8zu threads=%d %9.3fs %14.0f updates/s\n", bs, t,
                    s, ups(recs.size(), s));
        report.record("rmat_fold",
                      {{"mode", mode.label},
                       {"batch_size", std::to_string(bs)}},
                      t, "batched", s, ups(recs.size(), s));
        if (bs == batch_sizes.back() && t == top_threads) top_batched_s = s;
      }
    }

    // The acceptance headline: batched parallel at the top thread count vs
    // the serial single-edge loop, largest batch size.
    const double speedup = top_batched_s > 0 ? serial_s / top_batched_s : 0.0;
    std::printf("speedup (batch=%zu, %d threads vs serial): %.2fx\n",
                batch_sizes.back(), top_threads, speedup);
    report.record("rmat_fold",
                  {{"mode", mode.label},
                   {"batch_size", std::to_string(batch_sizes.back())},
                   {"speedup", std::to_string(speedup)}},
                  top_threads, "speedup", top_batched_s,
                  ups(recs.size(), top_batched_s));
  }

  report.write();
  return 0;
}
