// Table 2 reproduction: modularity achieved by GN / pBD / pMA / pLA on six
// small community-structured networks, against the best-known score.
//
// The Karate instance is the real Zachary graph (embedded).  The other five
// real networks are not redistributable offline, so each is replaced by a
// planted-partition synthetic matched in vertex count, edge count and
// approximate community count (DESIGN.md §2).  The check is the paper's
// *pattern*: pBD tracks GN closely (sometimes beating it on the larger
// instances), pMA/pLA land in the same band, all well above the q > 0.3
// significance threshold.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "snap/community/anneal.hpp"
#include "snap/community/gn.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;
using namespace snapbench;

struct Instance {
  std::string name;
  CSRGraph g;
  double paper_gn;
  double paper_pbd, paper_pma, paper_pla;
  double best_known;
};

std::vector<Instance> make_instances() {
  const double s = scale();
  auto N = [&](vid_t n) {
    // Table 2 graphs are already small; only shrink the two large ones.
    return n <= 500 ? n
                    : std::max<vid_t>(500, static_cast<vid_t>(
                                               static_cast<double>(n) * s));
  };
  std::vector<Instance> v;
  v.push_back({"Karate", gen::karate_club(), 0.401, 0.397, 0.381, 0.397,
               0.431});
  // n, m, approximate community count from the literature:
  // books (105, 441, ~3), jazz (198, 2742, ~4), metabolic (453, 2025, ~10),
  // e-mail (1133, 5451, ~10), PGP key signing (10680, 24316, ~100).
  auto planted = [&](vid_t n, eid_t m, vid_t k, std::uint64_t seed,
                     double out_frac = 0.15) {
    const double avg = 2.0 * static_cast<double>(m) / static_cast<double>(n);
    return gen::planted_partition(n, k, avg * (1.0 - out_frac),
                                  avg * out_frac, seed);
  };
  v.push_back({"Political books*", planted(105, 441, 3, 11), 0.509, 0.502,
               0.498, 0.487, 0.527});
  v.push_back({"Jazz musicians*", planted(198, 2742, 4, 12), 0.405, 0.405,
               0.439, 0.398, 0.445});
  v.push_back({"Metabolic*", planted(453, 2025, 10, 13), 0.403, 0.402, 0.402,
               0.402, 0.435});
  v.push_back({"E-mail*", planted(N(1133), static_cast<eid_t>(5451 * (N(1133) / 1133.0)),
                                  10, 14),
               0.532, 0.547, 0.494, 0.487, 0.574});
  // PGP's best-known q is 0.855 — communities are near-separate, so the
  // synthetic uses a small inter-community fraction (which also keeps the
  // GN baseline tractable at bench scale).
  v.push_back({"Key signing*",
               planted(N(10680), static_cast<eid_t>(24316 * (N(10680) / 10680.0)),
                       std::max<vid_t>(10, N(10680) / 100), 15, 0.07),
               0.816, 0.846, 0.733, 0.794, 0.855});
  return v;
}

}  // namespace

int main() {
  print_header("Table 2: modularity of GN vs pBD / pMA / pLA (* = synthetic "
               "stand-in, see DESIGN.md)");
  std::printf(
      "%-18s %6s | %7s %7s %7s %7s | %7s %7s   paper(GN/pBD/pMA/pLA)\n",
      "Network", "n", "GN", "pBD", "pMA", "pLA", "SA", "paperBK");

  for (auto& inst : make_instances()) {
    DivisiveParams stop;
    stop.stall_iterations =
        std::max<eid_t>(200, inst.g.num_edges() / 8);
    WallTimer t;
    const auto gn = girvan_newman(inst.g, stop);
    PBDParams bp;
    bp.stop = stop;
    const auto bd = pbd(inst.g, bp);
    const auto ma = pma(inst.g);
    const auto la = pla(inst.g);
    // Our computed "best known" column: simulated annealing (the expensive
    // non-greedy reference the paper's column comes from), on instances
    // small enough for it.
    char sa_cell[16] = "-";
    if (inst.g.num_vertices() <= 1200) {
      AnnealParams ap;
      ap.restarts = 2;
      std::snprintf(sa_cell, sizeof(sa_cell), "%.3f",
                    anneal_modularity(inst.g, ap).modularity);
    }
    std::printf(
        "%-18s %6lld | %7.3f %7.3f %7.3f %7.3f | %7s %7.3f   "
        "(%.3f/%.3f/%.3f/%.3f)  [%.1fs]\n",
        inst.name.c_str(), static_cast<long long>(inst.g.num_vertices()),
        gn.modularity, bd.modularity, ma.modularity, la.modularity, sa_cell,
        inst.best_known, inst.paper_gn, inst.paper_pbd, inst.paper_pma,
        inst.paper_pla, t.elapsed_s());
  }
  std::printf(
      "\nShape check: pBD ≈ GN on every instance; all four algorithms find\n"
      "significant structure (q > 0.3); best-known stays an upper bound on\n"
      "the real networks (synthetics may differ in absolute q).\n");
  return 0;
}
