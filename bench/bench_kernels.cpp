// Google-benchmark micro suite for the SNAP kernels (§3): each kernel is
// timed on an R-MAT instance (skewed degrees) and an Erdős–Rényi instance
// of the same size (uniform degrees).  The paper's claim is that the
// degree-aware kernels perform "mostly independent of the graph degree
// distribution" — compare the paired timings.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "snap/centrality/betweenness.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/kernels/sssp.hpp"

namespace {

using namespace snap;

constexpr int kScale = 15;  // 32k vertices, 256k edges: fast but nontrivial

const CSRGraph& rmat_instance() {
  static const CSRGraph g = [] {
    gen::RmatParams p;
    p.scale = kScale;
    p.edge_factor = 8;
    return gen::rmat(p);
  }();
  return g;
}

const CSRGraph& er_instance() {
  static const CSRGraph g =
      gen::erdos_renyi(vid_t{1} << kScale, eid_t{8} << kScale, false, 7);
  return g;
}

const CSRGraph& pick(bool skewed) {
  return skewed ? rmat_instance() : er_instance();
}

void BM_BFS(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, 0));
  }
  state.counters["MTEPS"] = benchmark::Counter(
      static_cast<double>(g.num_arcs()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BFS)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_BFSSerial(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_serial(g, 0));
  }
}
BENCHMARK(BM_BFSSerial)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_ConnectedComponents(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_Biconnected(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(biconnected_components(g));
  }
}
BENCHMARK(BM_Biconnected)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_BoruvkaMST(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boruvka_mst(g));
  }
}
BENCHMARK(BM_BoruvkaMST)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_DeltaStepping(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_stepping(g, 0));
  }
}
BENCHMARK(BM_DeltaStepping)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_ApproxEdgeBetweenness(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  // 0.5% of vertices as sources — the pBD inner kernel at sampling rate.
  std::vector<vid_t> sources;
  for (vid_t v = 0; v < g.num_vertices(); v += 200) sources.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_edge_betweenness(g, alive, sources));
  }
}
BENCHMARK(BM_ApproxEdgeBetweenness)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_Modularity(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  std::vector<vid_t> mem(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < mem.size(); ++v)
    mem[v] = static_cast<vid_t>(v % 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(modularity(g, mem));
  }
}
BENCHMARK(BM_Modularity)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_PmaAgglomeration(benchmark::State& state) {
  // Smaller instance: pMA runs a full dendrogram per iteration.
  static const CSRGraph g = gen::planted_partition(8192, 64, 7.0, 1.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pma(g));
  }
}
BENCHMARK(BM_PmaAgglomeration);

void BM_GraphBuild(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  const EdgeList& edges = g.edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CSRGraph::from_edges(g.num_vertices(), edges, false));
  }
}
BENCHMARK(BM_GraphBuild)->Arg(0)->Arg(1)->ArgName("rmat");

}  // namespace

BENCHMARK_MAIN();
