// Google-benchmark micro suite for the SNAP kernels (§3): each kernel is
// timed on an R-MAT instance (skewed degrees) and an Erdős–Rényi instance
// of the same size (uniform degrees).  The paper's claim is that the
// degree-aware kernels perform "mostly independent of the graph degree
// distribution" — compare the paired timings.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"
#include "snap/centrality/betweenness.hpp"
#include "snap/community/modularity.hpp"
#include "snap/community/pma.hpp"
#include "snap/gen/generators.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/biconnected.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/mst.hpp"
#include "snap/kernels/sssp.hpp"

namespace {

using namespace snap;

constexpr int kScale = 15;  // 32k vertices, 256k edges: fast but nontrivial

const CSRGraph& rmat_instance() {
  static const CSRGraph g = [] {
    gen::RmatParams p;
    p.scale = kScale;
    p.edge_factor = 8;
    return gen::rmat(p);
  }();
  return g;
}

const CSRGraph& er_instance() {
  static const CSRGraph g =
      gen::erdos_renyi(vid_t{1} << kScale, eid_t{8} << kScale, false, 7);
  return g;
}

const CSRGraph& ws_instance() {
  static const CSRGraph g =
      gen::watts_strogatz(vid_t{1} << kScale, 8, 0.05, 7);
  return g;
}

// 0 = Erdős–Rényi, 1 = R-MAT (skewed), 2 = Watts–Strogatz.
const CSRGraph& pick(int which) {
  switch (which) {
    case 1:
      return rmat_instance();
    case 2:
      return ws_instance();
    default:
      return er_instance();
  }
}

const char* graph_name(int which) {
  switch (which) {
    case 1:
      return "rmat";
    case 2:
      return "ws";
    default:
      return "er";
  }
}

/// One-time per-level audit of the hybrid engine's push/pull decisions on
/// each bench instance — the direction-optimizing analogue of Fig. 2's
/// per-kernel breakdown.
void report_hybrid_trace(int which) {
  static bool done[3] = {false, false, false};
  if (done[which]) return;
  done[which] = true;
  const CSRGraph& g = pick(which);
  std::vector<BfsLevelStats> trace;
  bfs_hybrid(g, 0, {}, &trace);
  std::fprintf(stderr,
               "# hybrid BFS levels on %s (n=%lld, arcs=%lld):\n"
               "#   level  mode  frontier_verts  frontier_arcs  discovered\n",
               graph_name(which), static_cast<long long>(g.num_vertices()),
               static_cast<long long>(g.num_arcs()));
  for (const auto& lv : trace) {
    std::fprintf(stderr, "#   %5lld  %s  %14lld  %13lld  %10lld\n",
                 static_cast<long long>(lv.level), lv.pull ? "pull" : "push",
                 static_cast<long long>(lv.frontier_vertices),
                 static_cast<long long>(lv.frontier_arcs),
                 static_cast<long long>(lv.discovered));
  }
}

void BM_BFS(benchmark::State& state) {
  const CSRGraph& g = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, 0));
  }
  state.counters["MTEPS"] = benchmark::Counter(
      static_cast<double>(g.num_arcs()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BFS)->Arg(0)->Arg(1)->Arg(2)->ArgName("graph");

void BM_BFSPush(benchmark::State& state) {
  // The paper's original arc-balanced push-only BFS: the baseline the
  // direction-optimizing engine is measured against.
  const CSRGraph& g = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_push(g, 0));
  }
  state.counters["MTEPS"] = benchmark::Counter(
      static_cast<double>(g.num_arcs()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BFSPush)->Arg(0)->Arg(1)->Arg(2)->ArgName("graph");

void BM_BFSHybrid(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const CSRGraph& g = pick(which);
  report_hybrid_trace(which);
  std::vector<BfsLevelStats> trace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_hybrid(g, 0, {}, &trace));
  }
  double pull_levels = 0;
  for (const auto& lv : trace)
    if (lv.pull) pull_levels += 1;
  state.counters["levels"] = static_cast<double>(trace.size());
  state.counters["pull_levels"] = pull_levels;
  state.counters["MTEPS"] = benchmark::Counter(
      static_cast<double>(g.num_arcs()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BFSHybrid)->Arg(0)->Arg(1)->Arg(2)->ArgName("graph");

void BM_BFSSerial(benchmark::State& state) {
  const CSRGraph& g = pick(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_serial(g, 0));
  }
}
BENCHMARK(BM_BFSSerial)->Arg(0)->Arg(1)->ArgName("graph");

void BM_ConnectedComponents(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_Biconnected(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(biconnected_components(g));
  }
}
BENCHMARK(BM_Biconnected)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_BoruvkaMST(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(boruvka_mst(g));
  }
}
BENCHMARK(BM_BoruvkaMST)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_DeltaStepping(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta_stepping(g, 0));
  }
}
BENCHMARK(BM_DeltaStepping)->Arg(0)->Arg(1)->ArgName("rmat");

// Exact Brandes runs all n sources — use a dedicated smaller instance so the
// benchmark stays in micro territory.
const CSRGraph& bc_instance() {
  static const CSRGraph g = [] {
    gen::RmatParams p;
    p.scale = 11;  // 2k vertices
    p.edge_factor = 8;
    p.seed = 9;
    return gen::rmat(p);
  }();
  return g;
}

void BM_BetweennessCoarse(benchmark::State& state) {
  const CSRGraph& g = bc_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        betweenness_centrality(g, BCGranularity::kCoarse));
  }
}
BENCHMARK(BM_BetweennessCoarse);

void BM_BetweennessFine(benchmark::State& state) {
  const CSRGraph& g = bc_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(betweenness_centrality(g, BCGranularity::kFine));
  }
}
BENCHMARK(BM_BetweennessFine);

void BM_EdgeBetweennessMasked(benchmark::State& state) {
  const CSRGraph& g = bc_instance();
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_betweenness_masked(g, alive));
  }
}
BENCHMARK(BM_EdgeBetweennessMasked);

void BM_ApproxEdgeBetweenness(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);
  // 0.5% of vertices as sources — the pBD inner kernel at sampling rate.
  std::vector<vid_t> sources;
  for (vid_t v = 0; v < g.num_vertices(); v += 200) sources.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(approx_edge_betweenness(g, alive, sources));
  }
}
BENCHMARK(BM_ApproxEdgeBetweenness)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_Modularity(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  std::vector<vid_t> mem(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < mem.size(); ++v)
    mem[v] = static_cast<vid_t>(v % 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(modularity(g, mem));
  }
}
BENCHMARK(BM_Modularity)->Arg(0)->Arg(1)->ArgName("rmat");

void BM_PmaAgglomeration(benchmark::State& state) {
  // Smaller instance: pMA runs a full dendrogram per iteration.
  static const CSRGraph g = gen::planted_partition(8192, 64, 7.0, 1.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pma(g));
  }
}
BENCHMARK(BM_PmaAgglomeration);

void BM_GraphBuild(benchmark::State& state) {
  const CSRGraph& g = pick(state.range(0) != 0);
  const EdgeList& edges = g.edges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CSRGraph::from_edges(g.num_vertices(), edges, false));
  }
}
BENCHMARK(BM_GraphBuild)->Arg(0)->Arg(1)->ArgName("rmat");

/// Smoke/JSON mode (CI perf trajectory): time each Brandes engine entry
/// point once on a small instance and emit sources-per-second records.
/// Invoked with `--smoke` and/or `--json out.json`; without either flag the
/// binary is the ordinary google-benchmark suite.
int run_centrality_smoke(int argc, char** argv) {
  using namespace snapbench;
  print_header("bench_kernels centrality smoke: Brandes engine sources/s");
  JsonReport report("bench_kernels", flag_value(argc, argv, "--json"));

  gen::RmatParams rp;
  rp.scale = has_flag(argc, argv, "--smoke") ? 9 : 11;
  rp.edge_factor = 8;
  rp.seed = 9;
  const CSRGraph g = gen::rmat(rp);
  // Weighted twin of the same topology (distinct weights, Dijkstra phase).
  EdgeList wedges = g.edges();
  for (std::size_t i = 0; i < wedges.size(); ++i)
    wedges[i].w = static_cast<weight_t>(1 + (i % 7));
  const CSRGraph wg = CSRGraph::from_edges(g.num_vertices(), wedges, false);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(g.num_edges()), 1);

  const int nt = max_threads();
  const auto n = static_cast<double>(g.num_vertices());
  const JsonReport::Params params{{"n", std::to_string(g.num_vertices())},
                                  {"m", std::to_string(g.num_edges())}};
  parallel::ThreadScope scope(nt);
  struct Entry {
    const char* phase;
    std::function<void()> run;
  };
  // lint:allow(std-function) bench driver table, not library code
  const std::vector<Entry> entries{
      {"brandes_coarse",
       [&] { betweenness_centrality(g, BCGranularity::kCoarse); }},
      {"brandes_fine",
       [&] { betweenness_centrality(g, BCGranularity::kFine); }},
      {"brandes_masked", [&] { edge_betweenness_masked(g, alive); }},
      {"brandes_weighted", [&] { weighted_betweenness_centrality(wg); }},
  };
  std::printf("%-18s %10s %12s\n", "phase", "seconds", "sources/s");
  for (const auto& e : entries) {
    WallTimer w;
    e.run();
    const double sec = w.elapsed_s();
    report.record("rmat", params, nt, e.phase, sec, n / sec);
    std::printf("%-18s %10.3f %12.0f\n", e.phase, sec, n / sec);
  }
  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (snapbench::has_flag(argc, argv, "--smoke") ||
      !snapbench::flag_value(argc, argv, "--json").empty())
    return run_centrality_smoke(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
