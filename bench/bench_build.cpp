// Graph-ingest throughput bench: edges/second for raw edge generation, CSR
// construction (the PR-2 parallel pipeline, with and without dedupe, plus
// the retained serial reference), and edge-list text I/O, across R-MAT /
// Erdős–Rényi / Watts–Strogatz instances and a thread sweep.
//
//   bench_build [--smoke] [--json out.json]
//
// --smoke shrinks the instances so CI can run this as a smoke step and
// archive the JSON perf trajectory; SNAP_MAX_THREADS caps the sweep.

#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/io/edge_list_io.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace {

using snapbench::JsonReport;

struct Instance {
  std::string label;
  snap::vid_t n = 0;
  bool directed = false;
  JsonReport::Params params;
  std::function<snap::EdgeList()> make_edges;
};

std::vector<Instance> instances(bool smoke) {
  auto rmat_inst = [](int scale, snap::eid_t ef) {
    snap::gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = ef;
    p.seed = 7;
    Instance inst;
    inst.label = "rmat" + std::to_string(scale);
    inst.n = snap::vid_t{1} << scale;
    inst.params = {{"family", "rmat"},
                   {"scale", std::to_string(scale)},
                   {"edge_factor", std::to_string(ef)}};
    inst.make_edges = [p] { return snap::gen::rmat_edges(p); };
    return inst;
  };
  auto er_inst = [](int scale, snap::eid_t ef) {
    const snap::vid_t n = snap::vid_t{1} << scale;
    const snap::eid_t m = ef * n;
    Instance inst;
    inst.label = "er" + std::to_string(scale);
    inst.n = n;
    inst.params = {{"family", "er"},
                   {"n", std::to_string(n)},
                   {"m", std::to_string(m)}};
    inst.make_edges = [n, m] { return snap::gen::erdos_renyi_edges(n, m, 9); };
    return inst;
  };
  auto ws_inst = [](int scale, snap::vid_t k) {
    const snap::vid_t n = snap::vid_t{1} << scale;
    Instance inst;
    inst.label = "ws" + std::to_string(scale);
    inst.n = n;
    inst.params = {{"family", "ws"},
                   {"n", std::to_string(n)},
                   {"k", std::to_string(k)}};
    inst.make_edges = [n, k] {
      return snap::gen::watts_strogatz_edges(n, k, 0.1, 11);
    };
    return inst;
  };
  if (smoke) return {rmat_inst(14, 8), er_inst(14, 8), ws_inst(14, 4)};
  return {rmat_inst(18, 8), rmat_inst(20, 8), er_inst(18, 8), ws_inst(18, 8)};
}

std::vector<int> build_thread_sweep(bool smoke) {
  std::vector<int> ts;
  const int cap = smoke ? 2 : std::min(8, snapbench::max_threads());
  for (int t = 1; t <= cap; t *= 2) ts.push_back(t);
  return ts;
}

double mps(std::size_t edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds / 1e6 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = snapbench::has_flag(argc, argv, "--smoke");
  JsonReport report("bench_build",
                    snapbench::flag_value(argc, argv, "--json"));
  snapbench::print_header(
      "Graph ingest: edge generation, CSR build, edge-list I/O (Medges/s)");

  const auto threads = build_thread_sweep(smoke);
  const std::string tmp =
      (std::filesystem::temp_directory_path() / "snap_bench_build_edges.txt")
          .string();

  std::vector<Instance> insts;
  {
    std::string cname;
    snap::CSRGraph cg;
    if (snapbench::corpus_from_flags(argc, argv, &cname, &cg)) {
      // Rebuild-from-edges throughput on the corpus instance's edge list.
      Instance inst;
      inst.label = cname;
      inst.n = cg.num_vertices();
      inst.directed = cg.directed();
      inst.params = {{"family", "corpus"}};
      const snap::EdgeList edges = cg.edges();
      inst.make_edges = [edges] { return edges; };
      insts.push_back(std::move(inst));
    } else {
      insts = instances(smoke);
    }
  }

  for (const Instance& inst : insts) {
    std::printf("\n-- %s (n=%lld) --\n", inst.label.c_str(),
                static_cast<long long>(inst.n));
    std::printf("%8s %12s %14s %14s %12s %12s\n", "threads", "gen",
                "build+dedupe", "build-nodedupe", "write", "read");
    double t1_build = 0, tmax_build = 0;
    for (int t : threads) {
      snap::parallel::ThreadScope scope(t);
      snap::WallTimer timer;
      const snap::EdgeList edges = inst.make_edges();
      const double gen_s = timer.elapsed_s();
      const std::size_t m = edges.size();

      snap::BuildOptions dedupe_opts;  // dedupe + sort_adjacency on
      timer.reset();
      const snap::CSRGraph g =
          snap::CSRGraph::from_edges(inst.n, edges, inst.directed, dedupe_opts);
      const double build_s = timer.elapsed_s();
      if (t == 1) t1_build = build_s;
      tmax_build = build_s;

      snap::BuildOptions raw_opts;
      raw_opts.dedupe = false;
      timer.reset();
      const snap::CSRGraph graw =
          snap::CSRGraph::from_edges(inst.n, edges, inst.directed, raw_opts);
      const double build_raw_s = timer.elapsed_s();

      timer.reset();
      snap::io::write_edge_list(g, tmp);
      const double write_s = timer.elapsed_s();
      timer.reset();
      const snap::io::ParsedEdges parsed = snap::io::read_edge_list(tmp);
      const double read_s = timer.elapsed_s();

      std::printf("%8d %9.1f M/s %11.1f M/s %11.1f M/s %9.1f M/s %9.1f M/s\n",
                  t, mps(m, gen_s), mps(m, build_s), mps(m, build_raw_s),
                  mps(g.edges().size(), write_s),
                  mps(parsed.edges.size(), read_s));

      report.record(inst.label, inst.params, t, "gen", gen_s, mps(m, gen_s));
      report.record(inst.label, inst.params, t, "build_dedupe", build_s,
                    mps(m, build_s));
      report.record(inst.label, inst.params, t, "build_nodedupe", build_raw_s,
                    mps(m, build_raw_s));
      report.record(inst.label, inst.params, t, "io_write", write_s,
                    mps(g.edges().size(), write_s));
      report.record(inst.label, inst.params, t, "io_read", read_s,
                    mps(parsed.edges.size(), read_s));

      if (t == 1) {
        // Serial reference builder, for the parallel-pipeline-vs-reference
        // overhead (and the differential tests' oracle cost).
        snap::BuildOptions serial_opts;
        serial_opts.path = snap::BuildPath::kSerial;
        timer.reset();
        const snap::CSRGraph gs = snap::CSRGraph::from_edges(
            inst.n, edges, inst.directed, serial_opts);
        const double serial_s = timer.elapsed_s();
        std::printf("%8s %9s     %11.1f M/s   (serial reference, %lld edges kept)\n",
                    "ref", "", mps(m, serial_s),
                    static_cast<long long>(gs.num_edges()));
        report.record(inst.label, inst.params, 1, "build_serial_ref", serial_s,
                      mps(m, serial_s));
      }
    }
    if (t1_build > 0 && tmax_build > 0)
      std::printf("build+dedupe speedup at %d threads: %.2fx\n",
                  threads.back(), t1_build / tmax_build);
  }
  std::filesystem::remove(tmp);
  report.write();
  return 0;
}
