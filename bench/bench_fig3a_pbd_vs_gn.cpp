// Figure 3(a) reproduction: speedup of pBD over the GN algorithm on the
// real-world instances, decomposed exactly as the paper decomposes it:
//
//   overall = (algorithm-engineering speedup: single-thread pBD vs GN)
//           x (parallel speedup of pBD at the full thread count)
//
// Both algorithms run the same number of divisive iterations, so the ratio
// is per-unit-work; the paper's single-thread ratios range from ~8x (PPI,
// small) to ~26x (NDwww), compounding to up to ~343x overall.
//
// The GN baseline column is the unengineered flavor (full_recompute — every
// component rescored every round, the classic O(n·m)-per-round loop); the
// "GN rest." column is our component-restricted GN, whose per-round cost
// follows the touched component's size rather than the graph's.  The ratio
// between the two is the score-caching win on its own.
//
// Full GN on the larger instances is infeasible by design (that is the
// paper's point); instance sizes follow SNAP_SCALE and the iteration count
// is fixed, which preserves the per-iteration cost ratio the figure shows.
//
// Flags: --json out.json (machine-readable records), --smoke (small
// instances for CI).
#include <cstdio>

#include "bench_common.hpp"
#include "snap/community/gn.hpp"
#include "snap/community/pbd.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace snap;
  using namespace snapbench;
  print_header("Figure 3(a): pBD vs GN — algorithm engineering x parallelism");

  const bool smoke = has_flag(argc, argv, "--smoke");
  JsonReport report("bench_fig3a_pbd_vs_gn",
                    flag_value(argc, argv, "--json"));

  // GN-feasible sizes: cap every instance to at most gn_cap vertices.
  const double s = smoke ? 0.05 : scale();
  auto scl = [&](vid_t x) {
    return std::max<vid_t>(64, static_cast<vid_t>(static_cast<double>(x) * s));
  };
  const auto gn_cap = static_cast<vid_t>(6000 * s * 4);  // ~6k at default
  auto shrink = [&](vid_t n) { return std::min<vid_t>(n, gn_cap); };

  struct Inst {
    const char* label;
    CSRGraph g;
  };
  std::vector<Inst> insts;
  insts.push_back({"PPI", rmat_fold(shrink(scl(8503)),
                                    scl(8503) <= gn_cap ? std::max<eid_t>(64, static_cast<eid_t>(32191 * s))
                                                        : gn_cap * 4,
                                    false, 101)});
  if (!smoke) {
    insts.push_back(
        {"Citations", rmat_fold(shrink(scl(27400)), gn_cap * 6, false, 102)});
    insts.push_back({"DBLP", gen::planted_partition(
                                 shrink(scl(310138)),
                                 std::max<vid_t>(4, shrink(scl(310138)) / 150),
                                 5.6, 1.0, 103)});
    insts.push_back(
        {"NDwww", rmat_fold(shrink(scl(325729)), gn_cap * 4, false, 104)});
  }
  insts.push_back(
      {"RMAT-SF", rmat_fold(shrink(scl(400000)), gn_cap * 4, false, 106)});
  // Many disjoint communities (zero inter-community edges): every round's
  // dirty set is one small component, so the gap between GN full_recompute
  // and restricted GN is the per-round component-vs-graph scaling itself.
  insts.push_back({"Frag-20c",
                   gen::planted_partition(
                       gn_cap, std::max<vid_t>(4, gn_cap / 300), 8.0,
                       /*inter=*/0.0, 105)});

  const eid_t iters = smoke ? 4 : 6;  // same divisive work for everyone
  const int pmax = max_threads();

  std::printf("%-10s %8s %8s | %10s %10s %8s | %10s %8s %9s %8s\n", "Instance",
              "n", "m", "GN full(s)", "GN rest(s)", "cache x", "pBD 1t(s)",
              "eng x", "par x", "overall");
  for (auto& inst : insts) {
    DivisiveParams stop;
    stop.max_iterations = iters;
    const JsonReport::Params params{
        {"n", std::to_string(inst.g.num_vertices())},
        {"m", std::to_string(inst.g.num_edges())},
        {"iters", std::to_string(iters)}};
    const auto rounds = static_cast<double>(iters);
    double gn_full_s, gn_rest_s, pbd1_s, pbdp_s;
    {
      parallel::ThreadScope scope(1);
      DivisiveParams full = stop;
      full.full_recompute = true;
      WallTimer w;
      (void)girvan_newman(inst.g, full);
      gn_full_s = w.elapsed_s();
      report.record(inst.label, params, 1, "gn_full_recompute", gn_full_s,
                    rounds / gn_full_s);
    }
    {
      parallel::ThreadScope scope(1);
      WallTimer w;
      (void)girvan_newman(inst.g, stop);
      gn_rest_s = w.elapsed_s();
      report.record(inst.label, params, 1, "gn_restricted", gn_rest_s,
                    rounds / gn_rest_s);
    }
    PBDParams bp;
    bp.stop = stop;
    {
      parallel::ThreadScope scope(1);
      WallTimer w;
      (void)pbd(inst.g, bp);
      pbd1_s = w.elapsed_s();
      report.record(inst.label, params, 1, "pbd", pbd1_s, rounds / pbd1_s);
    }
    {
      parallel::ThreadScope scope(pmax);
      WallTimer w;
      (void)pbd(inst.g, bp);
      pbdp_s = w.elapsed_s();
      report.record(inst.label, params, pmax, "pbd", pbdp_s, rounds / pbdp_s);
    }
    const double eng = gn_full_s / pbd1_s;
    const double par = pbd1_s / pbdp_s;
    std::printf(
        "%-10s %8lld %8lld | %10.2f %10.3f %8.1f | %10.3f %8.1f %9.2f %8.1f\n",
        inst.label, static_cast<long long>(inst.g.num_vertices()),
        static_cast<long long>(inst.g.num_edges()), gn_full_s, gn_rest_s,
        gn_full_s / gn_rest_s, pbd1_s, eng, par, eng * par);
  }
  std::printf(
      "\nPaper shape: engineering speedup grows with instance size (~8x on\n"
      "the small PPI up to ~26x on NDwww); multiplied by a ~13x parallel\n"
      "speedup it reaches ~343x overall on the T2000.  'cache x' isolates\n"
      "the component-restricted rescoring win inside GN itself.\n");
  report.write();
  return 0;
}
