// Figure 3(a) reproduction: speedup of pBD over the GN algorithm on the
// real-world instances, decomposed exactly as the paper decomposes it:
//
//   overall = (algorithm-engineering speedup: single-thread pBD vs GN)
//           x (parallel speedup of pBD at the full thread count)
//
// Both algorithms run the same number of divisive iterations, so the ratio
// is per-unit-work; the paper's single-thread ratios range from ~8x (PPI,
// small) to ~26x (NDwww), compounding to up to ~343x overall.
//
// Full GN on the larger instances is infeasible by design (that is the
// paper's point); instance sizes follow SNAP_SCALE and the iteration count
// is fixed, which preserves the per-iteration cost ratio the figure shows.
#include <cstdio>

#include "bench_common.hpp"
#include "snap/community/gn.hpp"
#include "snap/community/pbd.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snap;
  using namespace snapbench;
  print_header("Figure 3(a): pBD vs GN — algorithm engineering x parallelism");

  // GN-feasible sizes: cap every instance to at most gn_cap vertices.
  const double s = scale();
  const auto gn_cap = static_cast<vid_t>(6000 * s * 4);  // ~6k at default
  auto shrink = [&](vid_t n) { return std::min<vid_t>(n, gn_cap); };

  struct Inst {
    const char* label;
    CSRGraph g;
  };
  std::vector<Inst> insts;
  insts.push_back({"PPI", rmat_fold(shrink(scaled(8503)),
                                    scaled(8503) <= gn_cap ? std::max<eid_t>(64, static_cast<eid_t>(32191 * s))
                                                           : gn_cap * 4,
                                    false, 101)});
  insts.push_back(
      {"Citations", rmat_fold(shrink(scaled(27400)), gn_cap * 6, false, 102)});
  insts.push_back({"DBLP", gen::planted_partition(
                               shrink(scaled(310138)),
                               std::max<vid_t>(4, shrink(scaled(310138)) / 150),
                               5.6, 1.0, 103)});
  insts.push_back(
      {"NDwww", rmat_fold(shrink(scaled(325729)), gn_cap * 4, false, 104)});
  insts.push_back(
      {"RMAT-SF", rmat_fold(shrink(scaled(400000)), gn_cap * 4, false, 106)});

  const eid_t iters = 6;  // same divisive work for both algorithms
  const int pmax = max_threads();

  std::printf("%-10s %8s %8s | %10s %10s %8s | %9s %8s\n", "Instance", "n",
              "m", "GN 1t (s)", "pBD 1t(s)", "eng x", "par x", "overall");
  for (auto& inst : insts) {
    DivisiveParams stop;
    stop.max_iterations = iters;
    double gn_s, pbd1_s, pbdp_s;
    {
      parallel::ThreadScope scope(1);
      WallTimer w;
      (void)girvan_newman(inst.g, stop);
      gn_s = w.elapsed_s();
    }
    PBDParams bp;
    bp.stop = stop;
    {
      parallel::ThreadScope scope(1);
      WallTimer w;
      (void)pbd(inst.g, bp);
      pbd1_s = w.elapsed_s();
    }
    {
      parallel::ThreadScope scope(pmax);
      WallTimer w;
      (void)pbd(inst.g, bp);
      pbdp_s = w.elapsed_s();
    }
    const double eng = gn_s / pbd1_s;
    const double par = pbd1_s / pbdp_s;
    std::printf("%-10s %8lld %8lld | %10.2f %10.3f %8.1f | %9.2f %8.1f\n",
                inst.label, static_cast<long long>(inst.g.num_vertices()),
                static_cast<long long>(inst.g.num_edges()), gn_s, pbd1_s, eng,
                par, eng * par);
  }
  std::printf(
      "\nPaper shape: engineering speedup grows with instance size (~8x on\n"
      "the small PPI up to ~26x on NDwww); multiplied by a ~13x parallel\n"
      "speedup it reaches ~343x overall on the T2000.\n");
  return 0;
}
