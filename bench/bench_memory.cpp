// bench_memory: the memory-system performance bench.
//
// Runs BFS, connected components, sampled betweenness, PageRank (10
// fixed-point iterations), and (in full mode) Louvain over one corpus
// instance in up to five memory layouts:
//
//   baseline     the graph exactly as generated/loaded
//   degree       relabel_by_degree pre-pass (hubs first)
//   hub          relabel_by_hub_cluster pre-pass (hub block + BFS tail)
//   compressed   delta/varint CompressedCSR built over the hub ordering
//                (BFS and PageRank — the bandwidth-bound kernels the
//                encoding targets)
//   partitioned  PartitionedCSR, owner-computes kernels (BFS, CC, degrees,
//                PageRank with sum-combined boundary exchange; the run also
//                emits a pagerank-exchange:partitioned record carrying the
//                per-iteration cross-shard message volume and how much the
//                combiner cut it vs a naive per-cut-edge push)
//
// Every kernel uses the same logical source vertices in every layout (ids
// mapped through the relabeling permutation), so the numbers isolate the
// memory layout.  Pre-pass and build costs are recorded as their own
// phases — a locality ordering only pays off if its one-time cost is
// amortized by the traversals that follow, and the report shows both sides.
//
// Flags:
//   --corpus NAME   corpus instance (default rmat22; `--corpus list` to list)
//   --smoke         small built-in instance, 1 rep, no Louvain (CI mode)
//   --json PATH     write JSON records (phase names "<kernel>:<layout>")
//   --reps N        timing repetitions, min taken (default 3; smoke: 1)
//   --partitioner   cut PartitionedCSR with multilevel k-way instead of
//                   contiguous chunks (slower build, smaller boundary)
//   --shards K      PartitionedCSR shard count (default max(4, threads))

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/centrality/betweenness.hpp"
#include "snap/community/louvain.hpp"
#include "snap/graph/compressed_csr.hpp"
#include "snap/graph/reorder.hpp"
#include "snap/kernels/bfs.hpp"
#include "snap/kernels/connected_components.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/partition/partitioned_csr.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace {

using snap::CSRGraph;
using snap::vid_t;

constexpr int kBCSources = 8;

/// Best-of-reps wall time of `fn` (which must not be optimized away:
/// every kernel returns a result we fold into `sink`).
template <typename F>
double time_best(int reps, double& sink, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    snap::WallTimer t;
    sink += fn();
    best = std::min(best, t.elapsed_s());
  }
  return best;
}

/// Deterministic sample sources: the top-degree vertex plus evenly spaced
/// ids (original-id space; callers map through the layout's permutation).
std::vector<vid_t> pick_sources(const CSRGraph& g, int count) {
  const vid_t n = g.num_vertices();
  vid_t hub = 0;
  for (vid_t v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;
  std::vector<vid_t> s{hub};
  for (int i = 1; i < count && i < n; ++i)
    s.push_back((n / count) * i % n);
  return s;
}

struct Layout {
  std::string name;
  const CSRGraph* graph;
  const std::vector<vid_t>* old_to_new;  ///< nullptr = identity
};

vid_t mapped(const Layout& l, vid_t old_id) {
  return l.old_to_new ? (*l.old_to_new)[static_cast<std::size_t>(old_id)]
                      : old_id;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snapbench;
  const bool smoke = has_flag(argc, argv, "--smoke");
  const int reps = std::atoi(
      flag_value(argc, argv, "--reps", smoke ? "1" : "3").c_str());
  const std::string json = flag_value(argc, argv, "--json");
  const int threads = snap::parallel::num_threads();

  print_header("bench_memory: locality-aware CSR layouts");

  std::string dataset;
  CSRGraph g;
  if (smoke) {
    dataset = "smoke";
    g = make_rmat(14);
    std::printf("[smoke] R-MAT scale 14: n=%lld m=%lld\n",
                static_cast<long long>(g.num_vertices()),
                static_cast<long long>(g.num_edges()));
  } else if (!corpus_from_flags(argc, argv, &dataset, &g)) {
    dataset = "rmat22";
    g = load_corpus(dataset);
  }

  JsonReport report("memory", json);
  const JsonReport::Params params = {
      {"n", std::to_string(g.num_vertices())},
      {"m", std::to_string(g.num_edges())}};
  auto rec = [&](const std::string& phase, double seconds) {
    report.record(dataset, params, threads, phase, seconds);
  };

  const std::vector<vid_t> sources = pick_sources(g, kBCSources);
  const vid_t bfs_src = sources[0];
  double sink = 0;

  // --- Pre-passes -------------------------------------------------------
  snap::WallTimer t_deg;
  snap::ReorderedGraph by_degree = snap::relabel_by_degree(g);
  const double s_deg = t_deg.elapsed_s();
  rec("prepass:degree", s_deg);

  snap::WallTimer t_hub;
  snap::ReorderedGraph by_hub = snap::relabel_by_hub_cluster(g);
  const double s_hub = t_hub.elapsed_s();
  rec("prepass:hub", s_hub);

  snap::WallTimer t_comp;
  const snap::CompressedCSR compressed =
      snap::CompressedCSR::from_graph(by_hub.graph);
  const double s_comp = t_comp.elapsed_s();
  rec("prepass:compressed", s_comp);
  const double plain_bytes =
      static_cast<double>(g.num_arcs()) * sizeof(vid_t);
  std::printf("pre-pass: degree %.2fs, hub %.2fs, compress %.2fs "
              "(%.2f bytes/arc, %.1fx smaller)\n",
              s_deg, s_hub, s_comp,
              static_cast<double>(compressed.byte_size()) /
                  static_cast<double>(std::max<snap::eid_t>(1, g.num_arcs())),
              plain_bytes / static_cast<double>(std::max<std::size_t>(
                                1, compressed.byte_size())));

  snap::PartitionedCSROptions popts;
  popts.num_shards = std::max(4, threads);
  if (const std::string s = flag_value(argc, argv, "--shards"); !s.empty())
    popts.num_shards = std::atoi(s.c_str());
  popts.use_partitioner = has_flag(argc, argv, "--partitioner");
  snap::WallTimer t_part;
  const snap::PartitionedCSR part = snap::PartitionedCSR::build(g, popts);
  const double s_part = t_part.elapsed_s();
  rec("prepass:partitioned", s_part);
  std::printf("partitioned: %d shards, boundary arcs %lld / %lld (%.1f%%), "
              "build %.2fs\n",
              part.num_shards(),
              static_cast<long long>(part.boundary_arcs()),
              static_cast<long long>(part.num_arcs()),
              100.0 * static_cast<double>(part.boundary_arcs()) /
                  static_cast<double>(std::max<snap::eid_t>(1, part.num_arcs())),
              s_part);

  const std::vector<Layout> layouts = {
      {"baseline", &g, nullptr},
      {"degree", &by_degree.graph, &by_degree.old_to_new},
      {"hub", &by_hub.graph, &by_hub.old_to_new},
  };

  // Fixed work for cross-layout comparability: exactly 10 iterations,
  // no early exit (tol = 0).
  snap::PageRankParams prp;
  prp.max_iters = 10;
  prp.tol = 0.0;

  // --- Kernels over the flat layouts ------------------------------------
  std::map<std::string, double> times;  // "<kernel>:<layout>" -> seconds
  for (const Layout& l : layouts) {
    const CSRGraph& lg = *l.graph;
    const vid_t src = mapped(l, bfs_src);

    times["bfs:" + l.name] = time_best(reps, sink, [&] {
      return static_cast<double>(snap::bfs(lg, src).num_visited);
    });
    rec("bfs:" + l.name, times["bfs:" + l.name]);

    // The adjacency-driven CC engine: the edge-list SV engine streams
    // g.edges() sequentially and is insensitive to vertex order, so it
    // would measure nothing about the layout (see docs/PERFORMANCE.md).
    times["cc:" + l.name] = time_best(reps, sink, [&] {
      return static_cast<double>(snap::connected_components_bfs(lg).count);
    });
    rec("cc:" + l.name, times["cc:" + l.name]);

    std::vector<vid_t> lsrc;
    for (const vid_t s : sources) lsrc.push_back(mapped(l, s));
    times["bc:" + l.name] = time_best(reps, sink, [&] {
      return snap::approx_vertex_betweenness(lg, lsrc)[0];
    });
    rec("bc:" + l.name, times["bc:" + l.name]);

    times["pagerank:" + l.name] = time_best(reps, sink, [&] {
      return snap::pagerank(lg, prp).rank[0];
    });
    rec("pagerank:" + l.name, times["pagerank:" + l.name]);

    if (!smoke) {
      times["louvain:" + l.name] = time_best(1, sink, [&] {
        return snap::louvain(lg).community.modularity;
      });
      rec("louvain:" + l.name, times["louvain:" + l.name]);
    }
  }

  // --- Compressed (BFS: the bandwidth-bound kernel) ----------------------
  {
    const vid_t src = mapped(layouts[2], bfs_src);
    times["bfs:compressed"] = time_best(reps, sink, [&] {
      return static_cast<double>(
          snap::bfs_compressed(compressed, src).num_visited);
    });
    rec("bfs:compressed", times["bfs:compressed"]);

    times["pagerank:compressed"] = time_best(reps, sink, [&] {
      return snap::pagerank_compressed(compressed, prp).rank[0];
    });
    rec("pagerank:compressed", times["pagerank:compressed"]);
  }

  // --- Partitioned (owner-computes BFS / CC / degrees) -------------------
  times["bfs:partitioned"] = time_best(reps, sink, [&] {
    return static_cast<double>(part.bfs_distances(bfs_src)[0]);
  });
  rec("bfs:partitioned", times["bfs:partitioned"]);
  times["cc:partitioned"] = time_best(reps, sink, [&] {
    return static_cast<double>(part.components().count);
  });
  rec("cc:partitioned", times["cc:partitioned"]);
  times["degree:partitioned"] = time_best(reps, sink, [&] {
    return static_cast<double>(part.degrees()[0]);
  });
  rec("degree:partitioned", times["degree:partitioned"]);

  snap::PartitionedPageRank ppr;
  times["pagerank:partitioned"] = time_best(reps, sink, [&] {
    ppr = part.pagerank(prp);
    return ppr.result.rank[0];
  });
  rec("pagerank:partitioned", times["pagerank:partitioned"]);

  // Cross-shard traffic of the owner-computes PageRank.  The counters are
  // deterministic (a pure function of graph and cut), recorded with
  // seconds = 0 so bench_compare archives them without time-gating:
  // messages_per_iter is what actually crossed shard boundaries,
  // naive_per_iter is what a per-cut-edge push would have sent.
  {
    const auto iters = static_cast<std::uint64_t>(
        std::max(1, ppr.result.iterations));
    const std::uint64_t per_iter = ppr.boundary_messages / iters;
    const std::uint64_t naive_per_iter =
        (ppr.boundary_messages + ppr.combined_messages) / iters;
    JsonReport::Params msg_params = params;
    msg_params.emplace_back("shards", std::to_string(part.num_shards()));
    msg_params.emplace_back("messages_per_iter", std::to_string(per_iter));
    msg_params.emplace_back("naive_per_iter", std::to_string(naive_per_iter));
    msg_params.emplace_back("combined_total",
                            std::to_string(ppr.combined_messages));
    report.record(dataset, msg_params, threads,
                  "pagerank-exchange:partitioned", 0.0);
    std::printf("pagerank exchange: %llu msgs/iter combined vs %llu naive "
                "(%.2fx reduction, boundary arcs %lld)\n",
                static_cast<unsigned long long>(per_iter),
                static_cast<unsigned long long>(naive_per_iter),
                per_iter > 0 ? static_cast<double>(naive_per_iter) /
                                   static_cast<double>(per_iter)
                             : 1.0,
                static_cast<long long>(part.boundary_arcs()));
  }

  // --- Speedup table vs baseline ----------------------------------------
  std::printf("\n%-10s %-12s %10s %10s\n", "kernel", "layout", "seconds",
              "speedup");
  const std::vector<std::string> kernels = {"bfs", "cc", "bc", "pagerank",
                                            "louvain", "degree"};
  for (const std::string& k : kernels) {
    const auto base = times.find(k + ":baseline");
    for (const auto& [key, sec] : times) {
      if (key.rfind(k + ":", 0) != 0) continue;
      const std::string layout = key.substr(k.size() + 1);
      if (base != times.end() && base->second > 0)
        std::printf("%-10s %-12s %10.4f %9.2fx\n", k.c_str(), layout.c_str(),
                    sec, base->second / sec);
      else
        std::printf("%-10s %-12s %10.4f %10s\n", k.c_str(), layout.c_str(),
                    sec, "-");
    }
  }
  std::printf("(sink %.3g)\n", sink);

  report.write();
  return 0;
}
