// Community-engine comparison: the modern move/coarsen/refine engines
// (parallel Louvain, parallel label propagation) against the paper's 2008
// agglomerative heuristics (pMA, pLA) on the Table 2 generator instances —
// modularity achieved and wall time, per algorithm.
//
// The full run adds a planted-partition instance at >= 1M edges, which is
// the acceptance record for the Louvain engine: modularity at least
// pMA/pLA's while running faster than both.  The committed baseline
// (bench/baselines/BENCH_community.json) is a full-mode run; CI replays the
// smoke subset and soft-gates runtimes via tools/bench_compare.py.
//
// Flags: --json out.json (machine-readable records), --smoke (small
// instances for CI).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/community/label_prop.hpp"
#include "snap/community/louvain.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;
using namespace snapbench;

struct Instance {
  std::string name;
  CSRGraph g;
};

/// The Table 2 family, minus the GN-priced instances' caps: Karate is the
/// real Zachary graph, the rest are the planted-partition stand-ins of
/// bench_table2_modularity (same n/m/community-count recipes and seeds, so
/// the two benches describe the same instances).
std::vector<Instance> make_instances(bool smoke) {
  auto planted = [&](vid_t n, eid_t m, vid_t k, std::uint64_t seed,
                     double out_frac = 0.15) {
    const double avg = 2.0 * static_cast<double>(m) / static_cast<double>(n);
    return gen::planted_partition(n, k, avg * (1.0 - out_frac),
                                  avg * out_frac, seed);
  };
  std::vector<Instance> v;
  v.push_back({"Karate", gen::karate_club()});
  v.push_back({"Political books*", planted(105, 441, 3, 11)});
  v.push_back({"Metabolic*", planted(453, 2025, 10, 13)});
  v.push_back({"E-mail*", planted(1133, 5451, 10, 14)});
  if (!smoke) {
    v.push_back({"Key signing*", planted(10680, 24316, 100, 15, 0.07)});
    // The acceptance instance: >= 1M realized edges of community-structured
    // graph (n = 260k, k = 1000, ~8 expected degree -> m ~ 1.03M after
    // dedupe shrink).
    v.push_back({"planted-1M",
                 gen::planted_partition(260000, 1000, /*deg_in=*/7.0,
                                        /*deg_out=*/1.0, 21)});
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Community engines: Louvain / PLP vs pMA / pLA "
               "(* = synthetic stand-in, see DESIGN.md)");
  const bool smoke = has_flag(argc, argv, "--smoke");
  JsonReport report("bench_community", flag_value(argc, argv, "--json"));
  const int pmax = parallel::max_threads();
  parallel::ThreadScope scope(pmax);

  std::vector<Instance> insts;
  {
    std::string cname;
    CSRGraph cg;
    if (corpus_from_flags(argc, argv, &cname, &cg))
      insts.push_back({cname, std::move(cg)});
    else
      insts = make_instances(smoke);
  }

  std::printf("%-18s %8s %9s | %-7s %9s %8s %7s\n", "Network", "n", "m",
              "algo", "q", "time(s)", "k");
  for (const Instance& inst : insts) {
    const JsonReport::Params base_params{
        {"n", std::to_string(inst.g.num_vertices())},
        {"m", std::to_string(inst.g.num_edges())}};
    struct Row {
      const char* phase;
      double q;
      double seconds;
      vid_t clusters;
    };
    std::vector<Row> rows;

    {
      WallTimer w;
      const LouvainResult r = louvain(inst.g);
      rows.push_back({"louvain", r.community.modularity, w.elapsed_s(),
                      r.community.clustering.num_clusters});
    }
    {
      WallTimer w;
      const LabelPropResult r = label_propagation(inst.g);
      rows.push_back({"plp", r.community.modularity, w.elapsed_s(),
                      r.community.clustering.num_clusters});
    }
    {
      WallTimer w;
      const CommunityResult r = pma(inst.g);
      rows.push_back(
          {"pma", r.modularity, w.elapsed_s(), r.clustering.num_clusters});
    }
    {
      WallTimer w;
      const CommunityResult r = pla(inst.g);
      rows.push_back(
          {"pla", r.modularity, w.elapsed_s(), r.clustering.num_clusters});
    }

    for (const Row& row : rows) {
      JsonReport::Params params = base_params;
      params.emplace_back("modularity", std::to_string(row.q));
      params.emplace_back("clusters", std::to_string(row.clusters));
      report.record(inst.name, params, pmax, row.phase, row.seconds);
      std::printf("%-18s %8lld %9lld | %-7s %9.4f %8.3f %7lld\n",
                  inst.name.c_str(),
                  static_cast<long long>(inst.g.num_vertices()),
                  static_cast<long long>(inst.g.num_edges()), row.phase,
                  row.q, row.seconds, static_cast<long long>(row.clusters));
    }
  }
  std::printf(
      "\nShape check: Louvain's modularity is at or above pMA/pLA's on every\n"
      "instance, and on the 1M-edge planted instance (full run) it is also\n"
      "faster than both — the acceptance record in BENCH_community.json.\n");
  report.write();
  return 0;
}
