// Figure 2 reproduction: execution time and relative speedup of the three
// community-detection algorithms on RMAT-SF, sweeping the thread count
// 1..32 exactly as the paper sweeps the Sun Fire T2000.
//
// Paper shape at 32 threads: pBD speedup ≈ 13, pMA ≈ 9, pLA ≈ 12; pBD is
// minutes-scale while pMA/pLA are comparable to each other and much faster.
//
// pBD's divisive loop is capped at a fixed number of edge removals so one
// data point is a fixed amount of work (the paper ran the full algorithm
// for days of aggregate CPU; the speedup curve is per-unit-work either way).
//
// NOTE: on a machine with one hardware core every curve is flat ≈ 1; run on
// a multicore host to see the paper's scaling.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace snap;
  using namespace snapbench;
  print_header("Figure 2: parallel performance of pBD / pMA / pLA on RMAT-SF");

  // The sweep re-runs all three algorithms once per thread setting, so the
  // default instance is 0.2 x SNAP_SCALE x the paper's RMAT-SF; raise
  // SNAP_SCALE to grow it (SNAP_SCALE=5 reproduces the full 400k/1.6M), or
  // pass --corpus NAME to sweep a named corpus instance instead.
  std::string cname = "RMAT-SF";
  CSRGraph g;
  if (!corpus_from_flags(argc, argv, &cname, &g)) {
    const double f = 0.2 * scale();
    g = rmat_fold(std::max<vid_t>(1024, static_cast<vid_t>(400000 * f)),
                  std::max<eid_t>(4096, static_cast<eid_t>(1600000 * f)),
                  false, 106);
  }
  std::printf("%s: n=%lld m=%lld\n\n", cname.c_str(),
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  const auto threads = thread_sweep();
  const eid_t pbd_iters = 12;  // fixed work per data point

  std::printf("%-6s | %12s %9s | %12s %9s | %12s %9s\n", "thr", "pBD time(s)",
              "speedup", "pMA time(s)", "speedup", "pLA time(s)", "speedup");
  double base_bd = 0, base_ma = 0, base_la = 0;
  for (int t : threads) {
    parallel::ThreadScope scope(t);
    PBDParams bp;
    bp.stop.max_iterations = pbd_iters;
    bp.sample_fraction = 0.01;
    bp.min_samples = 16;
    WallTimer w1;
    (void)pbd(g, bp);
    const double s_bd = w1.elapsed_s();

    WallTimer w2;
    (void)pma(g);
    const double s_ma = w2.elapsed_s();

    WallTimer w3;
    (void)pla(g);
    const double s_la = w3.elapsed_s();

    if (t == 1) {
      base_bd = s_bd;
      base_ma = s_ma;
      base_la = s_la;
    }
    std::printf("%-6d | %12.2f %9.2f | %12.2f %9.2f | %12.2f %9.2f\n", t,
                s_bd, base_bd / s_bd, s_ma, base_ma / s_ma, s_la,
                base_la / s_la);
  }
  std::printf(
      "\nPaper shape on the 8-core/32-thread T2000: speedups ~13 (pBD), ~9\n"
      "(pMA), ~12 (pLA) at 32 threads; pBD is the slowest in absolute time.\n");
  return 0;
}
