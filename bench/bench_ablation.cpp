// Ablation studies for the algorithm-engineering choices §4 describes:
//
//   A. pBD sampling rate — the "sample just 5% of the vertices" trade-off:
//      sweep the source-sampling fraction and report runtime vs final
//      modularity (exact scoring as the reference point).
//   B. pBD biconnected-components bridge prefilter (optional step 1).
//   C. pBD parallelism-granularity switch threshold (semi-automatic switch
//      from fine-grained sampled scoring to per-component exact scoring).
//   D. pLA local metric and seed order (degree vs clustering coefficient,
//      random vs BFS seeds) and the top-level amalgamation pass.
#include <cstdio>

#include "bench_common.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/community/spectral_modularity.hpp"
#include "snap/gen/generators.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;
using namespace snapbench;

CSRGraph workload() {
  // Community-structured small-world instance; size follows SNAP_SCALE.
  // Kept modest: the ablation grid re-runs pBD ~10 times, including one
  // configuration with fully exact per-iteration scoring (O(n·m) each).
  const auto n = static_cast<vid_t>(1000 * scale() * 4);
  return gen::planted_partition(n, std::max<vid_t>(4, n / 120), 10.0, 1.0,
                                77);
}

}  // namespace

int main() {
  print_header("Ablations: pBD / pLA design choices (§4)");
  const CSRGraph g = workload();
  std::printf("workload: planted partition n=%lld m=%lld\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  const eid_t budget = g.num_edges() / 6;

  std::printf("\n[A] pBD source-sampling fraction (exact_threshold=0 keeps "
              "sampling on):\n");
  std::printf("    %-12s %10s %10s %8s\n", "fraction", "time (s)", "q",
              "iters");
  for (double frac : {0.02, 0.05, 0.10, 0.25}) {
    PBDParams p;
    p.sample_fraction = frac;
    p.exact_threshold = 16;
    p.stop.max_iterations = budget;
    WallTimer t;
    const auto r = pbd(g, p);
    std::printf("    %-12.2f %10.2f %10.3f %8lld\n", frac, t.elapsed_s(),
                r.modularity, static_cast<long long>(r.iterations));
  }
  {
    PBDParams p;
    p.exact_threshold = g.num_vertices();  // always exact: the reference
    p.stop.max_iterations = budget;
    WallTimer t;
    const auto r = pbd(g, p);
    std::printf("    %-12s %10.2f %10.3f %8lld\n", "exact", t.elapsed_s(),
                r.modularity, static_cast<long long>(r.iterations));
  }

  std::printf("\n[B] pBD bridge prefilter (biconnected components, optional "
              "step 1):\n");
  for (bool pre : {false, true}) {
    PBDParams p;
    p.bicc_prefilter = pre;
    p.stop.max_iterations = budget;
    WallTimer t;
    const auto r = pbd(g, p);
    std::printf("    prefilter=%-5s %10.2f s   q=%.3f\n",
                pre ? "on" : "off", t.elapsed_s(), r.modularity);
  }

  std::printf("\n[C] pBD granularity-switch threshold (component size below "
              "which scoring is exact/coarse):\n");
  for (vid_t thr : {vid_t{16}, vid_t{128}, vid_t{1024}}) {
    PBDParams p;
    p.exact_threshold = thr;
    p.stop.max_iterations = budget;
    WallTimer t;
    const auto r = pbd(g, p);
    std::printf("    threshold=%-6lld %10.2f s   q=%.3f\n",
                static_cast<long long>(thr), t.elapsed_s(), r.modularity);
  }

  std::printf("\n[D] pLA variants:\n");
  struct Variant {
    const char* name;
    PLAParams p;
  };
  std::vector<Variant> variants;
  variants.push_back({"degree metric, random seeds", {}});
  {
    PLAParams p;
    p.metric = PLAMetric::kClusteringCoeff;
    variants.push_back({"clustering metric", p});
  }
  {
    PLAParams p;
    p.bfs_seed_order = true;
    variants.push_back({"BFS seed order", p});
  }
  {
    PLAParams p;
    p.amalgamate = false;
    variants.push_back({"no top-level amalgamation", p});
  }
  for (const auto& v : variants) {
    WallTimer t;
    const auto r = pla(g, v.p);
    std::printf("    %-28s %8.2f s   q=%.3f  clusters=%lld\n", v.name,
                t.elapsed_s(), r.modularity,
                static_cast<long long>(r.clustering.num_clusters));
  }

  std::printf("\n[E] §6 future-work extension — spectral modularity vs the "
              "greedy schemes:\n");
  {
    WallTimer t;
    const auto sm = spectral_modularity(g);
    std::printf("    %-28s %8.2f s   q=%.3f  clusters=%lld\n",
                "spectral (leading eigvec)", t.elapsed_s(), sm.modularity,
                static_cast<long long>(sm.clustering.num_clusters));
    t.reset();
    const auto ma = pma(g);
    std::printf("    %-28s %8.2f s   q=%.3f  clusters=%lld\n",
                "pMA (greedy agglomerative)", t.elapsed_s(), ma.modularity,
                static_cast<long long>(ma.clustering.num_clusters));
  }

  std::printf(
      "\nExpected: sampling at ~5%% matches exact quality at a fraction of\n"
      "the cost (the paper's headline engineering win); the prefilter and\n"
      "the granularity switch trade constant factors, not quality; pLA's\n"
      "amalgamation recovers most of the modularity its local phase leaves\n"
      "on the table.\n");
  return 0;
}
