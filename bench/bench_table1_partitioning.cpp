// Table 1 reproduction: edge cut of a balanced 32-way partitioning of three
// ~200k-vertex / ~1M-edge instances (road network, sparse random graph,
// synthetic small-world graph) under four partitioners:
//   Metis-kway  -> multilevel_kway            (direct k-way multilevel)
//   Metis-recur -> multilevel_recursive_bisection
//   Chaco-RQI   -> spectral_partition(kRQI)
//   Chaco-LAN   -> spectral_partition(kLanczos)
//
// Expected shape (paper): road cut ≈ 2-4k; random and small-world cuts are
// nearly two orders of magnitude larger (~0.7-0.8M of 1M edges); the
// spectral methods fail outright on the small-world instance.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "snap/partition/multilevel.hpp"
#include "snap/partition/spectral.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;
using namespace snapbench;

std::string cell(const PartitionResult& r) {
  if (!r.success) return "-";
  char buf[32];
  // A '!' flags a partition whose balance exceeded 1.2 — a cheap cut from
  // a lopsided split would not be comparable to the paper's balanced runs.
  std::snprintf(buf, sizeof(buf), "%lld%s", static_cast<long long>(r.edge_cut),
                r.imbalance > 1.2 ? "!" : "");
  return buf;
}

}  // namespace

int main() {
  print_header(
      "Table 1: edge cut, balanced 32-way partitioning (4 partitioners)");

  const vid_t side = static_cast<vid_t>(
      std::llround(std::sqrt(static_cast<double>(scaled(200000)))));
  struct Row {
    std::string name;
    CSRGraph g;
  };
  std::vector<Row> rows;
  rows.push_back({"Physical (road)", gen::grid_road(side, side, 0.12, 0.05, 1)});
  {
    const vid_t n = scaled(200000);
    const auto m = static_cast<eid_t>(5 * n);
    rows.push_back({"Sparse random", gen::erdos_renyi(n, m, false, 2)});
    rows.push_back({"Small-world", rmat_fold(n, m, false, 3)});
  }

  constexpr std::int32_t kParts = 32;
  std::printf("%-18s %12s %12s %12s %12s   (n, m)\n", "Graph Instance",
              "Metis-kway", "Metis-recur", "Chaco-RQI", "Chaco-LAN");
  for (const auto& row : rows) {
    WallTimer t;
    const auto kway = multilevel_kway(row.g, kParts);
    const auto recur = multilevel_recursive_bisection(row.g, kParts);
    SpectralParams sp;
    const auto rqi = spectral_partition(row.g, kParts, SpectralMethod::kRQI, sp);
    const auto lan =
        spectral_partition(row.g, kParts, SpectralMethod::kLanczos, sp);
    std::printf("%-18s %12s %12s %12s %12s   (n=%lld, m=%lld)  [%.1fs]\n",
                row.name.c_str(), cell(kway).c_str(), cell(recur).c_str(),
                cell(rqi).c_str(), cell(lan).c_str(),
                static_cast<long long>(row.g.num_vertices()),
                static_cast<long long>(row.g.num_edges()), t.elapsed_s());
  }
  std::printf(
      "\nPaper (full scale): road 1,856/1,703/2,937/3,913; random ~0.7M;\n"
      "small-world ~0.7-0.8M with both Chaco columns failing ('-').\n");
  return 0;
}
