// Analytics-service replay bench: stream a corpus instance's edges through
// the daemon's POST /ingest over loopback HTTP while reader threads sustain
// query load, and report ingest edges/s + reader qps.
//
//   bench_service [--smoke] [--json out.json] [--corpus NAME]
//
// Phases (bench_compare keys):
//   direct_apply : the same update stream applied straight through
//                  StreamingGraph::apply with eager snapshots — the
//                  in-process ceiling the HTTP path is measured against.
//   replay_0r    : stream POSTed batch-by-batch to /ingest, no readers.
//   replay_4r    : same, with 4 reader threads hammering cheap queries
//                  over keep-alive connections.
//   qps_4r       : the reader-side throughput during replay_4r.
//
// The acceptance headline: replay_4r ingest stays within 2x of replay_0r —
// readers answer from pinned snapshots and must not block the writer.
// Correctness is asserted, not assumed: after each replay the service's
// /stats edge count must equal the direct-apply reference graph's.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "corpus.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/server/http.hpp"
#include "snap/server/service.hpp"
#include "snap/stream/streaming_graph.hpp"
#include "snap/stream/update_batch.hpp"
#include "snap/util/json.hpp"
#include "snap/util/rng.hpp"
#include "snap/util/timer.hpp"

namespace {

using snap::CSRGraph;
using snap::vid_t;
using snap::server::GraphService;
using snap::server::HttpClient;
using snap::server::HttpResult;
using snap::server::HttpServer;
using snapbench::JsonReport;

struct Edge {
  vid_t u;
  vid_t v;
};

/// The replay stream: every logical edge of `g` once, in a seeded shuffle
/// (so ingest order is not the CSR order the generator produced).
std::vector<Edge> edge_stream(const CSRGraph& g, std::uint64_t seed) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    for (const vid_t u : g.neighbors(v))
      if (g.directed() || u <= v) edges.push_back({v, u});
  snap::SplitMix64 rng(seed);
  for (std::size_t i = edges.size(); i > 1; --i)
    std::swap(edges[i - 1], edges[static_cast<std::size_t>(
                                rng.next_bounded(static_cast<std::uint64_t>(i)))]);
  return edges;
}

/// Pre-rendered /ingest bodies, one per batch — body assembly is client
/// work and stays outside the timed window.
std::vector<std::string> ingest_bodies(const std::vector<Edge>& edges,
                                       std::size_t batch_size) {
  std::vector<std::string> bodies;
  std::size_t at = 0;
  while (at < edges.size()) {
    const std::size_t hi = std::min(at + batch_size, edges.size());
    snap::json::Value updates = snap::json::Value::array();
    for (std::size_t i = at; i < hi; ++i) {
      snap::json::Value rec = snap::json::Value::object();
      rec.set("op", "insert");
      rec.set("u", edges[i].u);
      rec.set("v", edges[i].v);
      rec.set("time", static_cast<std::int64_t>(i));
      updates.push_back(rec);
    }
    snap::json::Value doc = snap::json::Value::object();
    doc.set("updates", updates);
    bodies.push_back(doc.dump());
    at = hi;
  }
  return bodies;
}

/// In-process ceiling: the same batches through apply(), eager snapshots on
/// (that is what the service pays per epoch).  Returns seconds; *out gets
/// the final edge count for the correctness checks.
double run_direct(vid_t n, const std::vector<Edge>& edges,
                  std::size_t batch_size, snap::eid_t* final_edges) {
  snap::stream::StreamingGraph sg(n, /*directed=*/false);
  sg.set_eager_snapshots(true);
  std::vector<snap::stream::UpdateBatch> batches;
  std::size_t at = 0;
  while (at < edges.size()) {
    const std::size_t hi = std::min(at + batch_size, edges.size());
    snap::stream::UpdateBatch& b = batches.emplace_back();
    for (std::size_t i = at; i < hi; ++i)
      b.insert(edges[i].u, edges[i].v, static_cast<std::uint64_t>(i));
    at = hi;
  }
  snap::WallTimer timer;
  for (const auto& b : batches) sg.apply(b);
  const double s = timer.elapsed_s();
  *final_edges = sg.pin()->graph().num_edges();
  return s;
}

struct ReplayResult {
  double ingest_s = 0;   ///< writer wall time over all /ingest posts
  double qps = 0;        ///< reader queries/s during the ingest window
  snap::eid_t edges = 0; ///< /stats edge count after the replay
};

/// One replay: a fresh service, `readers` query threads, one writer
/// streaming the pre-rendered bodies.
ReplayResult run_replay(vid_t n, const std::vector<std::string>& bodies,
                        int readers) {
  GraphService service(n, /*directed=*/false);
  HttpServer server(&service, /*threads=*/readers + 2);
  std::string err;
  if (!server.start("127.0.0.1", 0, &err)) {
    std::fprintf(stderr, "bench_service: cannot start server: %s\n",
                 err.c_str());
    std::exit(1);
  }
  const int port = server.port();

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> reads{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([port, r, n, &done, &reads] {
      HttpClient client;
      std::string cerr;
      if (!client.connect("127.0.0.1", port, &cerr)) return;
      snap::SplitMix64 rng(static_cast<std::uint64_t>(r) * 7919 + 1);
      while (!done.load(std::memory_order_acquire)) {
        const auto v = static_cast<vid_t>(
            rng.next_bounded(static_cast<std::uint64_t>(n)));
        const char* target = rng.next_bounded(8) == 0 ? "/stats" : nullptr;
        const HttpResult res =
            target != nullptr
                ? client.request("GET", target)
                : client.request("GET", "/degree/" + std::to_string(v));
        if (!res.ok()) return;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  HttpClient writer;
  if (!writer.connect("127.0.0.1", port, &err)) {
    std::fprintf(stderr, "bench_service: writer connect: %s\n", err.c_str());
    std::exit(1);
  }
  snap::WallTimer timer;
  for (const std::string& body : bodies) {
    const HttpResult res = writer.request("POST", "/ingest", body);
    if (!res.ok()) {
      std::fprintf(stderr, "bench_service: ingest failed: %s %s\n",
                   res.error.c_str(), res.body.c_str());
      std::exit(1);
    }
  }
  ReplayResult out;
  out.ingest_s = timer.elapsed_s();
  done.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  out.qps = out.ingest_s > 0
                ? static_cast<double>(reads.load()) / out.ingest_s
                : 0.0;

  snap::json::Value stats;
  const HttpResult res = writer.request("GET", "/stats");
  if (res.ok() && snap::json::parse(res.body, &stats, nullptr))
    out.edges = stats.get("num_edges").as_int64();
  server.stop();
  return out;
}

double eps(std::size_t edges, double seconds) {
  return seconds > 0 ? static_cast<double>(edges) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = snapbench::has_flag(argc, argv, "--smoke");
  JsonReport report("bench_service",
                    snapbench::flag_value(argc, argv, "--json"));
  snapbench::print_header(
      "Analytics service: HTTP ingest replay + concurrent query load");

  std::string corpus_name;
  CSRGraph corpus_graph;
  const bool use_corpus =
      snapbench::corpus_from_flags(argc, argv, &corpus_name, &corpus_graph);
  const vid_t n_default = smoke ? (vid_t{1} << 12) : (vid_t{1} << 16);
  const CSRGraph base =
      use_corpus ? std::move(corpus_graph)
                 : snapbench::rmat_fold(n_default, 8 * n_default, false, 99);
  const std::string dataset = use_corpus ? corpus_name : "rmat_fold";
  const vid_t n = base.num_vertices();

  const std::vector<Edge> edges = edge_stream(base, 4242);
  const std::size_t batch_size = smoke ? 512 : 2000;
  const std::vector<std::string> bodies = ingest_bodies(edges, batch_size);
  std::printf("dataset=%s n=%lld stream=%zu edges in %zu batches of %zu\n",
              dataset.c_str(), static_cast<long long>(n), edges.size(),
              bodies.size(), batch_size);

  snap::eid_t direct_edges = 0;
  const double direct_s = run_direct(n, edges, batch_size, &direct_edges);
  std::printf("%-22s %9.3fs %14.0f edges/s\n", "direct apply (eager)",
              direct_s, eps(edges.size(), direct_s));
  report.record(dataset, {{"batch_size", std::to_string(batch_size)}}, 1,
                "direct_apply", direct_s, eps(edges.size(), direct_s));

  const ReplayResult r0 = run_replay(n, bodies, /*readers=*/0);
  std::printf("%-22s %9.3fs %14.0f edges/s\n", "replay, 0 readers",
              r0.ingest_s, eps(edges.size(), r0.ingest_s));
  report.record(dataset, {{"batch_size", std::to_string(batch_size)}}, 1,
                "replay_0r", r0.ingest_s, eps(edges.size(), r0.ingest_s));

  const ReplayResult r4 = run_replay(n, bodies, /*readers=*/4);
  std::printf("%-22s %9.3fs %14.0f edges/s  (readers: %.0f qps)\n",
              "replay, 4 readers", r4.ingest_s,
              eps(edges.size(), r4.ingest_s), r4.qps);
  report.record(dataset, {{"batch_size", std::to_string(batch_size)}}, 5,
                "replay_4r", r4.ingest_s, eps(edges.size(), r4.ingest_s));
  report.record(dataset, {{"batch_size", std::to_string(batch_size)}}, 4,
                "qps_4r", r4.ingest_s, r4.qps);

  // Correctness: both replays must land on exactly the reference graph.
  if (r0.edges != direct_edges || r4.edges != direct_edges) {
    std::fprintf(stderr,
                 "bench_service: edge-count mismatch (direct %lld, "
                 "replay_0r %lld, replay_4r %lld)\n",
                 static_cast<long long>(direct_edges),
                 static_cast<long long>(r0.edges),
                 static_cast<long long>(r4.edges));
    return 1;
  }

  const double ratio =
      r0.ingest_s > 0 ? r4.ingest_s / r0.ingest_s : 0.0;
  std::printf("ingest slowdown with 4 readers: %.2fx (target <= 2x)\n",
              ratio);
  report.write();
  return 0;
}
