#pragma once

// Shared plumbing for the table/figure reproduction benches.
//
// Scale: every bench honors SNAP_SCALE (default 0.25), a multiplier on the
// paper's instance sizes so the whole suite completes in minutes on one
// machine.  SNAP_SCALE=1 reproduces the paper's exact n and m (GN-based
// benches then take hours, as they did for the authors).
//
// Threads: SNAP_MAX_THREADS (default 32) caps the 1,2,4,...,32 sweep that
// mirrors the Sun Fire T2000's thread range.  On machines with fewer
// hardware threads the sweep still runs — oversubscribed points simply show
// flat speedup.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/util/json.hpp"
#include "snap/util/rng.hpp"

namespace snapbench {

inline double scale() {
  if (const char* s = std::getenv("SNAP_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.25;
}

inline int max_threads() {
  if (const char* s = std::getenv("SNAP_MAX_THREADS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 32;
}

inline std::vector<int> thread_sweep() {
  std::vector<int> ts;
  for (int t = 1; t <= max_threads(); t *= 2) ts.push_back(t);
  return ts;
}

inline snap::vid_t scaled(snap::vid_t x) {
  return std::max<snap::vid_t>(32, static_cast<snap::vid_t>(
                                       static_cast<double>(x) * scale()));
}

/// R-MAT with an arbitrary (non-power-of-two) vertex count: generate at the
/// next power of two and fold ids mod n.  Folding preserves the skewed
/// degree distribution that drives kernel behaviour.
inline snap::CSRGraph rmat_fold(snap::vid_t n, snap::eid_t m, bool directed,
                                std::uint64_t seed) {
  int sc = 1;
  while ((snap::vid_t{1} << sc) < n) ++sc;
  snap::gen::RmatParams p;
  p.scale = sc;
  p.m = m;
  p.directed = directed;
  p.seed = seed;
  const snap::CSRGraph big = snap::gen::rmat(p);
  snap::EdgeList folded;
  folded.reserve(big.edges().size());
  for (snap::Edge e : big.edges()) {
    e.u %= n;
    e.v %= n;
    folded.push_back(e);
  }
  return snap::CSRGraph::from_edges(n, folded, directed);
}

/// One synthetic stand-in for a Table 3 instance.
struct Dataset {
  std::string label;
  std::string type;  ///< "undirected" / "directed", as Table 3 prints
  snap::CSRGraph graph;
};

/// The six instances of Table 3, at SNAP_SCALE * extra times the paper's
/// sizes.  Real networks are replaced by synthetic equivalents matched in
/// size, directedness, and degree-distribution class (see DESIGN.md §2).
/// `extra` lets algorithm-heavy benches (figure sweeps re-running the
/// community algorithms many times) shrink further than metric-only ones.
inline std::vector<Dataset> table3_datasets(bool include_actor = true,
                                            double extra = 1.0) {
  const double s = scale() * extra;
  auto N = [&](snap::vid_t n) {
    return std::max<snap::vid_t>(
        32, static_cast<snap::vid_t>(static_cast<double>(n) * s));
  };
  auto M = [&](snap::eid_t m) {
    return std::max<snap::eid_t>(64, static_cast<snap::eid_t>(
                                         static_cast<double>(m) * s));
  };
  std::vector<Dataset> ds;
  ds.push_back({"PPI", "undirected",
                rmat_fold(N(8503), M(32191), false, 101)});
  ds.push_back({"Citations", "directed",
                rmat_fold(N(27400), M(352504), true, 102)});
  {
    // DBLP: community-heavy co-authorship — planted partition matched in
    // size (m = 1,024,262 → average degree ≈ 6.6).
    const snap::vid_t n = N(310138);
    ds.push_back({"DBLP", "undirected",
                  snap::gen::planted_partition(n, std::max<snap::vid_t>(4, n / 150),
                                               5.6, 1.0, 103)});
  }
  ds.push_back({"NDwww", "directed",
                rmat_fold(N(325729), M(1090107), true, 104)});
  if (include_actor) {
    ds.push_back({"Actor", "undirected",
                  rmat_fold(N(392400), M(31788592), false, 105)});
  }
  ds.push_back({"RMAT-SF", "undirected",
                rmat_fold(N(400000), M(1600000), false, 106)});
  return ds;
}

/// RMAT-SF alone (the Figure 2 instance: 0.4M vertices, 1.6M edges).
inline snap::CSRGraph rmat_sf() {
  return rmat_fold(scaled(400000), std::max<snap::eid_t>(
                                       256, static_cast<snap::eid_t>(
                                                1600000 * scale())),
                   false, 106);
}

/// Value of `--flag value` in argv, or `fallback` when absent.
inline std::string flag_value(int argc, char** argv, const std::string& flag,
                              const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i)
    if (argv[i] == flag) return argv[i + 1];
  return fallback;
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i)
    if (argv[i] == flag) return true;
  return false;
}

/// Machine-readable bench results: every bench can take `--json out.json`
/// and append one record per measurement, so CI archives a perf trajectory
/// that future PRs diff against.  Records carry the bench name, dataset,
/// free-form string params (graph scale, edge counts, ...), the thread
/// count, a phase label, and seconds; numeric-looking values are emitted as
/// JSON numbers.  Serialization rides on snap/util/json — the same
/// escape-correct emitter the analytics service answers queries with — so
/// bench output stays parseable no matter what a dataset label contains.
class JsonReport {
 public:
  /// `path` empty = disabled (record/write become no-ops).
  explicit JsonReport(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  using Params = std::vector<std::pair<std::string, std::string>>;

  void record(const std::string& dataset, const Params& params, int threads,
              const std::string& phase, double seconds,
              double throughput = 0.0) {
    if (path_.empty()) return;
    snap::json::Value rec = snap::json::Value::object();
    rec.set("bench", bench_);
    rec.set("dataset", dataset);
    rec.set("threads", threads);
    rec.set("phase", phase);
    rec.set("seconds", seconds);
    if (throughput > 0) rec.set("throughput", throughput);
    for (const auto& [k, v] : params) {
      if (looks_numeric(v))
        rec.set(k, std::strtod(v.c_str(), nullptr));
      else
        rec.set(k, v);
    }
    records_.push_back(std::move(rec));
  }

  /// Write the accumulated records as a JSON array, one record per line.
  void write() const {
    if (path_.empty()) return;
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i)
      out << "  " << records_[i].dump()
          << (i + 1 < records_.size() ? ",\n" : "\n");
    out << "]\n";
    std::printf("wrote %zu records to %s\n", records_.size(), path_.c_str());
  }

 private:
  static bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end && *end == '\0';
  }

  std::string bench_;
  std::string path_;
  std::vector<snap::json::Value> records_;
};

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("SNAP_SCALE=%.3g (set SNAP_SCALE=1 for the paper's full sizes)\n",
              scale());
  std::printf("================================================================\n");
}

}  // namespace snapbench
