// Table 3 reproduction: the catalogue of small-world instances used in the
// performance study (§5), with the structural metrics SNAP's preprocessing
// layer computes.  Real networks are replaced by synthetic equivalents
// matched in n, m, directedness and degree-distribution class (DESIGN.md §2).
#include <cstdio>

#include "bench_common.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/util/timer.hpp"

int main() {
  using namespace snapbench;
  print_header("Table 3: small-world instances (synthetic equivalents)");

  // Actor is 31.8M edges at full scale; include it scaled like the rest.
  const auto datasets = table3_datasets(/*include_actor=*/true);
  std::printf("%-10s %10s %12s %12s | %9s %8s %8s %6s\n", "Label", "n", "m",
              "type", "avgdeg", "maxdeg", "cc", "comps");
  for (const auto& d : datasets) {
    snap::WallTimer t;
    const auto s = snap::summarize(d.graph, 8, 1);
    std::printf("%-10s %10lld %12lld %12s | %9.2f %8lld %8.4f %6lld  [%.1fs]\n",
                d.label.c_str(), static_cast<long long>(s.n),
                static_cast<long long>(s.m), d.type.c_str(), s.avg_degree,
                static_cast<long long>(s.max_degree), s.avg_clustering,
                static_cast<long long>(s.num_components), t.elapsed_s());
  }
  std::printf(
      "\nPaper (full scale): PPI 8,503/32,191 und; Citations 27,400/352,504\n"
      "dir; DBLP 310,138/1,024,262 und; NDwww 325,729/1,090,107 dir; Actor\n"
      "392,400/31,788,592 und; RMAT-SF 400,000/1,600,000 und.\n");
  return 0;
}
