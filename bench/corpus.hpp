#pragma once

// Benchmark corpus: named multi-scale instances with a binary cache.
//
// The table/figure benches generate their graphs inline, which is fine at
// SNAP_SCALE=0.25 but dominates wall time once instances reach memory-system
// scale (R-MAT 22 is ~4M vertices / 67M arcs; generation plus CSR build is
// minutes, loading the cached SNAPB2 snapshot is seconds).  `load_corpus`
// generates an instance the first time it is requested, writes it to
// SNAP_CORPUS_DIR (default `.snap_corpus/`), and thereafter adopts the CSR
// arrays straight off disk via the checksummed v2 binary format — O(read),
// no rebuild.
//
// Instances (name → generator):
//   rmat20..rmat24   R-MAT, n = 2^scale, m = 8n, the paper's small-world
//                    instance class at increasing memory footprints
//                    (scale 22 ≈ 4.2M vertices / 33.5M edges)
//   road-large       2048 x 2048 grid-road (near-planar, high diameter)
//   ppart-large      planted partition, n = 2^21, 1024 communities
//
// Every bench accepts `--corpus NAME` and runs on the named instance
// instead of its built-in SNAP_SCALE-scaled graphs.

#include <cstdio>
#include <filesystem>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "snap/gen/generators.hpp"
#include "snap/graph/csr_graph.hpp"
#include "snap/io/binary_io.hpp"
#include "snap/util/timer.hpp"

namespace snapbench {

struct CorpusSpec {
  std::string name;
  std::string summary;  ///< one line for --list output
  std::function<snap::CSRGraph()> make;
};

inline snap::CSRGraph make_rmat(int sc) {
  snap::gen::RmatParams p;
  p.scale = sc;
  p.edge_factor = 8;
  p.seed = 4242 + static_cast<std::uint64_t>(sc);
  return snap::gen::rmat(p);
}

/// The named corpus, smallest first.
inline const std::vector<CorpusSpec>& corpus_specs() {
  static const std::vector<CorpusSpec> specs = [] {
    std::vector<CorpusSpec> s;
    for (int sc = 20; sc <= 24; ++sc) {
      s.push_back({"rmat" + std::to_string(sc),
                   "R-MAT scale " + std::to_string(sc) + ", m = 8n",
                   [sc] { return make_rmat(sc); }});
    }
    s.push_back({"road-large", "2048x2048 grid-road", [] {
                   return snap::gen::grid_road(2048, 2048, 0.05, 0.05, 777);
                 }});
    s.push_back({"ppart-large",
                 "planted partition, n = 2^21, 1024 communities", [] {
                   return snap::gen::planted_partition(
                       snap::vid_t{1} << 21, 1024, 10.0, 2.0, 778);
                 }});
    return s;
  }();
  return specs;
}

inline std::string corpus_dir() {
  if (const char* d = std::getenv("SNAP_CORPUS_DIR")) return d;
  return ".snap_corpus";
}

/// Load a corpus instance by name: cached binary if present and valid,
/// otherwise generate, cache, and return.  Unknown names throw with the
/// list of valid ones.
inline snap::CSRGraph load_corpus(const std::string& name) {
  const CorpusSpec* spec = nullptr;
  for (const auto& s : corpus_specs())
    if (s.name == name) spec = &s;
  if (!spec) {
    std::string known;
    for (const auto& s : corpus_specs()) known += " " + s.name;
    throw std::runtime_error("unknown corpus instance '" + name +
                             "'; known:" + known);
  }
  const std::string dir = corpus_dir();
  const std::string path = dir + "/" + name + ".snapb";
  if (std::filesystem::exists(path)) {
    try {
      snap::WallTimer t;
      snap::CSRGraph g = snap::io::read_binary(path);
      std::printf("[corpus] %s: loaded cache %s in %.2fs (n=%lld m=%lld)\n",
                  name.c_str(), path.c_str(), t.elapsed_s(),
                  static_cast<long long>(g.num_vertices()),
                  static_cast<long long>(g.num_edges()));
      return g;
    } catch (const std::exception& e) {
      std::printf("[corpus] %s: cache unreadable (%s); regenerating\n",
                  name.c_str(), e.what());
    }
  }
  snap::WallTimer t;
  snap::CSRGraph g = spec->make();
  std::printf("[corpus] %s: generated in %.2fs (n=%lld m=%lld)\n",
              name.c_str(), t.elapsed_s(),
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  try {
    snap::WallTimer tw;
    snap::io::write_binary(g, path);
    std::printf("[corpus] %s: cached to %s in %.2fs\n", name.c_str(),
                path.c_str(), tw.elapsed_s());
  } catch (const std::exception& e) {
    std::printf("[corpus] %s: cache write failed (%s); continuing uncached\n",
                name.c_str(), e.what());
  }
  return g;
}

/// `--corpus NAME` handling shared by every bench: returns true (and fills
/// `out`) when the flag is present.  `--corpus list` prints the catalog and
/// exits.
inline bool corpus_from_flags(int argc, char** argv, std::string* name_out,
                              snap::CSRGraph* out) {
  const std::string name = flag_value(argc, argv, "--corpus");
  if (name.empty()) return false;
  if (name == "list") {
    std::printf("corpus instances:\n");
    for (const auto& s : corpus_specs())
      std::printf("  %-12s %s\n", s.name.c_str(), s.summary.c_str());
    std::exit(0);
  }
  *name_out = name;
  *out = load_corpus(name);
  return true;
}

}  // namespace snapbench
