// Fixture: must trigger [reduction-note] — float accumulation with no
// order-dependence comment.
#include <atomic>

namespace parallel {
void atomic_add(std::atomic<double>&, double);
}

void accumulate(std::atomic<double>& sum, double x) {
  parallel::atomic_add(sum, x);
}
