// Fixture: must trigger [std-function] — type-erased visitor parameter.
#include <functional>

void for_each_neighbor(long v, const std::function<void(long)>& fn) {
  fn(v);
}
