// Fixture: must trigger [reduction-note] — hand-rolled CAS-add loop with
// no order-dependence comment.  Bypassing parallel::atomic_add does not
// bypass the annotation contract.
#include <atomic>

void accumulate_cas(std::atomic<double>& sum, double x) {
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + x)) {
  }
}
