// Fixture: must produce NO findings.  Each rule's escape hatch in action:
// suppressions, justification/reduction comments, and benign look-alikes
// inside comments and strings.
#include <atomic>
#include <functional>

namespace parallel {
void atomic_add(std::atomic<double>&, double);
}

// Comment mentioning std::function and rand() must not trip anything.
const char* doc() { return "calls rand() via std::random_device"; }

void shim(long v, const std::function<void(long)>& fn)  // lint:allow(std-function)
{
  fn(v);
}

int tally(int n) {
  int total = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    // justification: bounded to n iterations of a cold path; contention
    // is irrelevant here and the serial order is what the test asserts.
#pragma omp critical
    total += i;
  }
  return total;
}

void accumulate(std::atomic<double>& sum, double x) {
  // reduction: order-dependent float sum; not thread-count reproducible.
  parallel::atomic_add(sum, x);
}

// Identifier containing "rand" as a substring must not match.
int operand_count(int strand) { return strand; }
