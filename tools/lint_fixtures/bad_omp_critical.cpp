// Fixture: must trigger [omp-critical] — critical section with no
// justification comment anywhere near it.
int tally(int n) {
  int total = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
#pragma omp critical
    total += i;
  }
  return total;
}
