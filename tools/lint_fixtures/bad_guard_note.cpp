// Fixture: a sync::Mutex member without an adjacent 'guards:' comment must
// trigger [guard-note] — the greppable lock catalog requires every mutex
// declaration to name what it protects.
namespace fixture {

namespace sync {
class Mutex {};
}  // namespace sync

struct Registry {
  sync::Mutex mu_;
  int entries_ = 0;
};

}  // namespace fixture
