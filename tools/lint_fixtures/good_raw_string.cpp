// Fixture: raw string literals must not desync the comment/string
// stripper.  Before the R"(...)" fix, the ')"' and embedded quotes below
// flipped the matcher back into code state mid-literal, fabricating
// [raw-mutex]/[randomness] findings from string *contents* — this file
// must lint clean.
namespace fixture {

// Embedded quotes: the naive matcher toggled string state at each '"',
// leaving `std::mutex` visible as code.
inline const char* kJson =
    R"({"primitive":"std::mutex","cv":"std::condition_variable"})";

// Delimited, multi-line: contents mention every rule's trigger text.
inline const char* kDoc = R"doc(
  std::mutex guidance, rand() seeding, #pragma omp critical notes,
  std::function<void()> callbacks — all inside one raw string.
)doc";

// A ')"' mid-literal: the classic desync (everything after it leaked
// into the code view).
inline const char* kRegex = R"re(\)" std::lock_guard<std::mutex> )re";

inline bool all_present() {
    return kJson != nullptr && kDoc != nullptr && kRegex != nullptr;
}

}  // namespace fixture
