// Fixture: must trigger [randomness] — unseeded stdlib RNG in library code.
#include <cstdlib>
#include <ctime>
#include <random>

int noise() {
  std::random_device rd;
  srand(static_cast<unsigned>(time(nullptr)));
  std::mt19937 gen(rd());
  return rand() + static_cast<int>(gen());
}
