// Fixture: bare std synchronization primitives outside snap/util/sync.hpp
// must trigger [raw-mutex] — they are invisible to -Wthread-safety.
#include <mutex>

namespace fixture {

struct Cache {
  std::mutex mu;  // finding: raw std::mutex member
  int value = 0;

  int read() {
    std::lock_guard<std::mutex> lk(mu);  // finding: raw std::lock_guard
    return value;
  }
};

}  // namespace fixture
