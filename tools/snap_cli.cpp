// snap-cli — command-line front end for the SNAP library: format
// conversion, structural summaries, community detection, partitioning,
// centrality ranking and synthetic-graph generation, so the framework is
// usable without writing C++.
//
//   snap-cli generate  --type rmat --scale 16 --edge-factor 8 --out g.txt
//   snap-cli summary   --in g.txt
//   snap-cli community --in g.txt --algo pma --out membership.txt
//   snap-cli partition --in g.txt --k 32 --method kway --out parts.txt
//   snap-cli centrality --in g.txt --metric betweenness --top 10
//   snap-cli pagerank  --in g.txt --top 10 --iters 50
//   snap-cli convert   --in g.txt --out g.net
//
// Formats are inferred from extensions (.txt/.el edge list, .gr/.dimacs
// DIMACS, .graph/.metis METIS, .net/.pajek Pajek, .bin binary) or forced
// with --in-format/--out-format.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "snap/centrality/betweenness.hpp"
#include "snap/centrality/closeness.hpp"
#include "snap/centrality/degree.hpp"
#include "snap/centrality/stress.hpp"
#include "snap/community/anneal.hpp"
#include "snap/community/gn.hpp"
#include "snap/community/label_prop.hpp"
#include "snap/community/louvain.hpp"
#include "snap/community/pbd.hpp"
#include "snap/community/pla.hpp"
#include "snap/community/pma.hpp"
#include "snap/community/spectral_modularity.hpp"
#include "snap/gen/generators.hpp"
#include "snap/io/binary_io.hpp"
#include "snap/io/dimacs_io.hpp"
#include "snap/io/edge_list_io.hpp"
#include "snap/io/metis_io.hpp"
#include "snap/io/pajek_io.hpp"
#include "snap/kernels/pagerank.hpp"
#include "snap/metrics/metrics.hpp"
#include "snap/metrics/robustness.hpp"
#include "snap/partition/multilevel.hpp"
#include "snap/partition/spectral.hpp"
#include "snap/server/http.hpp"
#include "snap/server/service.hpp"
#include "snap/util/json.hpp"
#include "snap/util/parallel.hpp"
#include "snap/util/timer.hpp"

namespace {

using namespace snap;

/// Minimal --key value / --flag argument map.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[key] = argv[++i];
      } else {
        kv_[key] = "";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& k) const { return kv_.count(k); }
  [[nodiscard]] std::string get(const std::string& k,
                                const std::string& dflt = "") const {
    auto it = kv_.find(k);
    return it == kv_.end() ? dflt : it->second;
  }
  [[nodiscard]] std::int64_t geti(const std::string& k,
                                  std::int64_t dflt) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? dflt : std::atoll(it->second.c_str());
  }
  [[nodiscard]] double getf(const std::string& k, double dflt) const {
    auto it = kv_.find(k);
    return it == kv_.end() ? dflt : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string require(const std::string& k) const {
    if (!has(k)) {
      std::fprintf(stderr, "missing required option --%s\n", k.c_str());
      std::exit(2);
    }
    return get(k);
  }

 private:
  std::map<std::string, std::string> kv_;
};

std::string ext_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? "" : path.substr(dot + 1);
}

std::string detect_format(const std::string& path, const std::string& forced) {
  if (!forced.empty()) return forced;
  const std::string e = ext_of(path);
  if (e == "gr" || e == "dimacs") return "dimacs";
  if (e == "graph" || e == "metis") return "metis";
  if (e == "net" || e == "pajek") return "pajek";
  if (e == "bin") return "binary";
  return "edgelist";
}

CSRGraph load(const Args& a) {
  const std::string path = a.require("in");
  const std::string fmt = detect_format(path, a.get("in-format"));
  const bool directed = a.has("directed");
  if (fmt == "dimacs") return io::read_dimacs(path, directed);
  if (fmt == "metis") return io::read_metis(path);
  if (fmt == "pajek") return io::read_pajek(path);
  if (fmt == "binary") return io::read_binary(path);
  if (fmt == "edgelist") return io::read_edge_list_graph(path, directed);
  std::fprintf(stderr, "unknown input format: %s\n", fmt.c_str());
  std::exit(2);
}

void save(const CSRGraph& g, const std::string& path,
          const std::string& forced) {
  const std::string fmt = detect_format(path, forced);
  if (fmt == "dimacs") {
    io::write_dimacs(g, path);
  } else if (fmt == "metis") {
    io::write_metis(g.directed() ? g.as_undirected() : g, path);
  } else if (fmt == "pajek") {
    io::write_pajek(g, path);
  } else if (fmt == "binary") {
    io::write_binary(g, path);
  } else if (fmt == "edgelist") {
    io::write_edge_list(g, path);
  } else {
    std::fprintf(stderr, "unknown output format: %s\n", fmt.c_str());
    std::exit(2);
  }
}

void write_labels(const std::vector<vid_t>& labels, const std::string& path) {
  std::ofstream out(path);
  for (std::size_t v = 0; v < labels.size(); ++v)
    out << v << ' ' << labels[v] << "\n";
  std::printf("wrote %zu labels to %s\n", labels.size(), path.c_str());
}

int cmd_generate(const Args& a) {
  const std::string type = a.require("type");
  const auto seed = static_cast<std::uint64_t>(a.geti("seed", 1));
  CSRGraph g;
  if (type == "rmat") {
    gen::RmatParams p;
    p.scale = static_cast<int>(a.geti("scale", 16));
    p.edge_factor = a.geti("edge-factor", 8);
    p.m = a.geti("m", 0);
    p.directed = a.has("directed");
    p.seed = seed;
    g = gen::rmat(p);
  } else if (type == "er") {
    g = gen::erdos_renyi(a.geti("n", 1 << 16), a.geti("m", 1 << 19),
                         a.has("directed"), seed);
  } else if (type == "ws") {
    g = gen::watts_strogatz(a.geti("n", 1 << 16), a.geti("k", 4),
                            a.getf("beta", 0.1), seed);
  } else if (type == "grid") {
    g = gen::grid_road(a.geti("rows", 256), a.geti("cols", 256),
                       a.getf("extra", 0.05), a.getf("drop", 0.05), seed);
  } else if (type == "planted") {
    g = gen::planted_partition(a.geti("n", 1 << 16), a.geti("k", 32),
                               a.getf("deg-in", 10.0), a.getf("deg-out", 1.0),
                               seed);
  } else {
    std::fprintf(stderr, "unknown generator: %s\n", type.c_str());
    return 2;
  }
  std::printf("generated %s: n=%lld m=%lld\n", type.c_str(),
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));
  save(g, a.require("out"), a.get("out-format"));
  return 0;
}

int cmd_convert(const Args& a) {
  const CSRGraph g = load(a);
  save(g, a.require("out"), a.get("out-format"));
  std::printf("converted: n=%lld m=%lld %s\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()),
              g.directed() ? "directed" : "undirected");
  return 0;
}

int cmd_summary(const Args& a) {
  const CSRGraph g = load(a);
  const GraphSummary s =
      summarize(g, static_cast<vid_t>(a.geti("path-samples", 16)));
  std::printf("vertices              %lld\n", static_cast<long long>(s.n));
  std::printf("edges                 %lld\n", static_cast<long long>(s.m));
  std::printf("directed              %s\n", s.directed ? "yes" : "no");
  std::printf("average degree        %.3f\n", s.avg_degree);
  std::printf("max degree            %lld\n",
              static_cast<long long>(s.max_degree));
  std::printf("clustering coeff      %.4f\n", s.avg_clustering);
  std::printf("assortativity         %+.4f\n", s.assortativity);
  std::printf("components            %lld\n",
              static_cast<long long>(s.num_components));
  std::printf("giant component       %lld\n",
              static_cast<long long>(s.giant_component_size));
  std::printf("avg path length       %.3f (sampled)\n",
              s.approx_avg_path_length);
  std::printf("diameter (approx)     %lld\n",
              static_cast<long long>(s.approx_diameter));
  return 0;
}

int cmd_community(const Args& a) {
  CSRGraph g = load(a);
  if (g.directed()) {
    std::printf("folding directed input to undirected (as the paper does)\n");
    g = g.as_undirected();
  }
  const std::string algo = a.get("algo", "pma");
  WallTimer t;
  CommunityResult r;
  if (algo == "pma") {
    r = pma(g);
  } else if (algo == "pla") {
    r = pla(g);
  } else if (algo == "louvain") {
    r = louvain(g).community;
  } else if (algo == "plp") {
    r = label_propagation(g).community;
  } else if (algo == "pbd") {
    PBDParams p;
    p.stop.max_iterations = a.geti("max-iterations", 0);
    p.stop.stall_iterations = a.geti("stall", g.num_edges() / 8);
    p.sample_fraction = a.getf("sample-fraction", 0.05);
    r = pbd(g, p);
  } else if (algo == "gn") {
    DivisiveParams p;
    p.max_iterations = a.geti("max-iterations", 0);
    p.stall_iterations = a.geti("stall", g.num_edges() / 8);
    r = girvan_newman(g, p);
  } else if (algo == "spectral") {
    r = spectral_modularity(g);
  } else if (algo == "anneal") {
    r = anneal_modularity(g);
  } else {
    std::fprintf(
        stderr,
        "unknown algorithm: %s (pbd|pma|pla|louvain|plp|gn|spectral|anneal)\n",
        algo.c_str());
    return 2;
  }
  std::printf("%s: %lld communities, modularity q=%.4f (%.2fs)\n",
              algo.c_str(),
              static_cast<long long>(r.clustering.num_clusters), r.modularity,
              t.elapsed_s());
  if (a.has("out")) write_labels(r.clustering.membership, a.get("out"));
  return 0;
}

int cmd_partition(const Args& a) {
  const CSRGraph loaded = load(a);
  const CSRGraph g = loaded.directed() ? loaded.as_undirected() : loaded;
  const auto k = static_cast<std::int32_t>(a.geti("k", 2));
  const std::string method = a.get("method", "kway");
  WallTimer t;
  PartitionResult r;
  if (method == "kway") {
    r = multilevel_kway(g, k);
  } else if (method == "recursive") {
    r = multilevel_recursive_bisection(g, k);
  } else if (method == "lanczos") {
    r = spectral_partition(g, k, SpectralMethod::kLanczos);
  } else if (method == "rqi") {
    r = spectral_partition(g, k, SpectralMethod::kRQI);
  } else {
    std::fprintf(stderr,
                 "unknown method: %s (kway|recursive|lanczos|rqi)\n",
                 method.c_str());
    return 2;
  }
  if (!r.success) {
    std::printf("partitioning FAILED: %s\n", r.note.c_str());
    return 1;
  }
  std::printf("%s %d-way: edge cut %lld, balance %.3f (%.2fs)\n",
              method.c_str(), k, static_cast<long long>(r.edge_cut),
              r.imbalance, t.elapsed_s());
  if (a.has("out")) {
    std::vector<vid_t> labels(r.part.begin(), r.part.end());
    write_labels(labels, a.get("out"));
  }
  return 0;
}

int cmd_centrality(const Args& a) {
  const CSRGraph g = load(a);
  const std::string metric = a.get("metric", "degree");
  const auto top = static_cast<std::size_t>(a.geti("top", 10));
  WallTimer t;
  std::vector<double> score;
  if (metric == "degree") {
    score = degree_centrality(g);
  } else if (metric == "closeness") {
    const auto samples = static_cast<vid_t>(a.geti("samples", 0));
    score = samples > 0 ? closeness_centrality_sampled(g, samples)
                        : closeness_centrality(g);
  } else if (metric == "betweenness") {
    score = betweenness_centrality(g).vertex;
  } else if (metric == "stress") {
    score = stress_centrality(g);
  } else {
    std::fprintf(stderr,
                 "unknown metric: %s (degree|closeness|betweenness|stress)\n",
                 metric.c_str());
    return 2;
  }
  std::vector<vid_t> idx(score.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<vid_t>(i);
  const std::size_t k = std::min(top, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::int64_t>(k),
                    idx.end(),
                    [&](vid_t x, vid_t y) { return score[x] > score[y]; });
  std::printf("top %zu by %s (%.2fs):\n", k, metric.c_str(), t.elapsed_s());
  for (std::size_t i = 0; i < k; ++i)
    std::printf("  %2zu. v%-10lld %.6g\n", i + 1,
                static_cast<long long>(idx[i]),
                score[static_cast<std::size_t>(idx[i])]);
  return 0;
}

int cmd_pagerank(const Args& a) {
  CSRGraph g = load(a);
  if (g.directed()) {
    std::printf("folding directed input to undirected (as the paper does)\n");
    g = g.as_undirected();
  }
  PageRankParams p;
  p.damping = a.getf("damping", 0.85);
  p.max_iters = static_cast<int>(a.geti("iters", 50));
  p.tol = a.getf("tol", 1e-9);
  WallTimer t;
  const PageRankResult r = pagerank(g, p);
  const auto top = static_cast<std::size_t>(a.geti("top", 10));
  std::vector<vid_t> idx(r.rank.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<vid_t>(i);
  const std::size_t k = std::min(top, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::int64_t>(k),
                    idx.end(),
                    [&](vid_t x, vid_t y) { return r.rank[x] > r.rank[y]; });
  std::printf("pagerank: %d iterations, residual %.3g (%.2fs)\n", r.iterations,
              r.residual, t.elapsed_s());
  std::printf("top %zu by pagerank:\n", k);
  for (std::size_t i = 0; i < k; ++i)
    std::printf("  %2zu. v%-10lld %.6g\n", i + 1,
                static_cast<long long>(idx[i]),
                r.rank[static_cast<std::size_t>(idx[i])]);
  if (a.has("out")) {
    std::ofstream out(a.get("out"));
    for (std::size_t v = 0; v < r.rank.size(); ++v)
      out << v << ' ' << r.rank[v] << "\n";
    std::printf("wrote %zu ranks to %s\n", r.rank.size(),
                a.get("out").c_str());
  }
  return 0;
}

int cmd_robustness(const Args& a) {
  const CSRGraph loaded = load(a);
  const CSRGraph g = loaded.directed() ? loaded.as_undirected() : loaded;
  const std::string attack = a.get("attack", "degree");
  const auto steps = static_cast<int>(a.geti("steps", 20));
  std::vector<vid_t> order;
  if (attack == "degree") {
    order = attack_order_by_degree(g);
  } else if (attack == "random") {
    order = attack_order_random(g, static_cast<std::uint64_t>(a.geti("seed", 1)));
  } else {
    std::fprintf(stderr, "unknown attack: %s (degree|random)\n",
                 attack.c_str());
    return 2;
  }
  const RobustnessProfile p = robustness_profile(g, order, steps);
  std::printf("attack=%s  robustness index R=%.4f\n", attack.c_str(),
              p.index());
  std::printf("%10s %14s\n", "removed", "giant frac");
  for (std::size_t i = 0; i < p.giant_fraction.size(); ++i)
    std::printf("%9.0f%% %14.4f\n", 100.0 * p.fraction_removed[i],
                p.giant_fraction[i]);
  return 0;
}

// --------------------------------------------------------------------------
// The analytics daemon (docs/SERVICE.md) and its client.

int cmd_serve(const Args& a) {
  const bool directed = a.has("directed");
  // Preload loads first so the service is sized to the file's full vertex
  // count — an insert stream alone cannot create trailing isolated
  // vertices (the graph only grows to the largest referenced id).
  CSRGraph preload;
  if (a.has("in")) preload = load(a);
  server::GraphService service(
      std::max<vid_t>(a.geti("n", 0), preload.num_vertices()), directed);

  // Push the preload through the same handler the wire uses.
  if (a.has("in")) {
    const CSRGraph& g = preload;
    json::Value updates = json::Value::array();
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      for (const vid_t u : g.neighbors(v)) {
        if (!g.directed() && u > v) continue;  // one record per logical edge
        json::Value rec = json::Value::object();
        rec.set("op", "insert");
        rec.set("u", v);
        rec.set("v", u);
        updates.push_back(rec);
      }
    }
    json::Value doc = json::Value::object();
    doc.set("updates", updates);
    server::HttpRequest req;
    req.method = "POST";
    req.path = "/ingest";
    req.body = doc.dump();
    const server::HttpResponse resp = service.handle(req);
    if (resp.status != 200) {
      std::fprintf(stderr, "preload failed: %s\n", resp.body.c_str());
      return 1;
    }
    std::fprintf(stderr, "preloaded %s: %s\n", a.get("in").c_str(),
                 resp.body.c_str());
  }

  const std::string host = a.get("host", "127.0.0.1");
  const auto port = static_cast<int>(a.geti("port", 7077));
  server::HttpServer server(&service,
                            static_cast<int>(a.geti("http-threads", 4)));
  std::string err;
  if (!server.start(host, port, &err)) {
    std::fprintf(stderr, "cannot listen on %s:%d: %s\n", host.c_str(), port,
                 err.c_str());
    return 1;
  }
  std::printf("snap-service listening on %s:%d\n", host.c_str(),
              server.port());
  std::fflush(stdout);
  service.wait_for_shutdown();
  server.stop();
  std::printf("snap-service stopped after %llu requests\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

int cmd_query(const Args& a) {
  const std::string target = a.require("target");
  std::string body = a.get("body");
  if (a.has("body-file")) {
    std::ifstream in(a.get("body-file"), std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read --body-file %s\n",
                   a.get("body-file").c_str());
      return 1;
    }
    body.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::string method = a.get("method", body.empty() ? "GET" : "POST");
  const server::HttpResult r =
      server::http_request(a.get("host", "127.0.0.1"),
                           static_cast<int>(a.geti("port", 7077)), method,
                           target, body);
  if (r.status == 0) {
    std::fprintf(stderr, "transport error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("%s\n", r.body.c_str());
  return r.ok() ? 0 : 1;
}

void usage() {
  std::printf(
      "snap-cli <command> [options]\n"
      "  generate   --type rmat|er|ws|grid|planted --out FILE [--n N] [--m M]\n"
      "             [--scale S] [--edge-factor F] [--k K] [--seed S]\n"
      "  convert    --in FILE --out FILE [--in-format F] [--out-format F]\n"
      "  summary    --in FILE [--path-samples N]\n"
      "  community  --in FILE [--algo pbd|pma|pla|louvain|plp|gn|spectral|anneal] [--out FILE]\n"
      "  partition  --in FILE --k K [--method kway|recursive|lanczos|rqi]\n"
      "  centrality --in FILE [--metric degree|closeness|betweenness|stress]\n"
      "             [--top N] [--samples N]\n"
      "  pagerank   --in FILE [--top N] [--iters N] [--damping D] [--tol T]\n"
      "             [--out FILE]\n"
      "  robustness --in FILE [--attack degree|random] [--steps N]\n"
      "  serve      [--host H] [--port P] [--n N] [--in FILE]\n"
      "             [--http-threads T]   (POST /shutdown stops it)\n"
      "  query      --target /stats [--host H] [--port P]\n"
      "             [--method GET|POST] [--body JSON | --body-file FILE]\n"
      "Common: --directed, --threads T\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  if (args.has("threads"))
    parallel::set_num_threads(static_cast<int>(args.geti("threads", 1)));
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "summary") return cmd_summary(args);
    if (cmd == "community") return cmd_community(args);
    if (cmd == "partition") return cmd_partition(args);
    if (cmd == "centrality") return cmd_centrality(args);
    if (cmd == "pagerank") return cmd_pagerank(args);
    if (cmd == "robustness") return cmd_robustness(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "query") return cmd_query(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
