#!/usr/bin/env python3
"""Compare bench JSON reports against committed baselines.

Two modes:

  single file:   bench_compare.py baselines/BENCH_x.json BENCH_x.json
  directory:     bench_compare.py bench/baselines .

In directory mode every BENCH_*.json in the baseline directory is compared
against the file of the same name in the current directory (one invocation
gates the whole suite); current-side files with no baseline are listed as
informational.

Files are JsonReport output (bench_common.hpp): a JSON array of records
keyed by (bench, dataset, phase) — thread count is deliberately not part of
the key, since the baseline and the CI runner rarely have the same core
count and a missing key would silence the comparison.  For every key present
in both, the current `seconds` is compared to the baseline; slowdowns beyond
the threshold are reported as warnings.

This is a soft gate: it always exits 0 (CI smoke runners are noisy, shared
machines — a hard fail would flake), but the warnings land in the job log,
the ::warning:: annotations surface on the PR, and when GITHUB_STEP_SUMMARY
is set a markdown comparison table lands on the run's summary page.
Regenerate a baseline with e.g.

    ./build/bench/bench_kernels --smoke --json bench/baselines/BENCH_centrality.json

on a quiet machine when an intentional perf change shifts it.
"""

import argparse
import glob
import json
import os
import sys


def key(rec):
    return (rec.get("bench"), rec.get("dataset"), rec.get("phase"))


def load(path):
    with open(path) as f:
        records = json.load(f)
    out = {}
    for rec in records:
        out[key(rec)] = rec
    return out


def compare_one(baseline_path, current_path, threshold, summary_rows):
    """Compare one baseline/current file pair; returns (compared, warned)."""
    try:
        base = load(baseline_path)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read baseline {baseline_path}: {e}")
        print("bench_compare: skipping comparison (no baseline yet)")
        return 0, 0
    try:
        cur = load(current_path)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read current {current_path}: {e}")
        return 0, 0

    warned = 0
    compared = 0
    name = os.path.basename(baseline_path)
    print(f"== {name}: {baseline_path} vs {current_path}")
    for k, rec in sorted(cur.items(), key=str):
        ref = base.get(k)
        if ref is None:
            print(f"  new record (no baseline): {k}")
            continue
        base_s, cur_s = ref.get("seconds"), rec.get("seconds")
        if not base_s or not cur_s:
            continue
        compared += 1
        ratio = cur_s / base_s
        marker = ""
        if ratio > 1.0 + threshold:
            warned += 1
            marker = "  <-- REGRESSION"
            print(f"::warning title=bench regression::{k}: "
                  f"{base_s:.4f}s -> {cur_s:.4f}s ({ratio:.2f}x)")
        print(f"  {k}: {base_s:.4f}s -> {cur_s:.4f}s ({ratio:.2f}x){marker}")
        summary_rows.append((name, k, base_s, cur_s, ratio,
                             ratio > 1.0 + threshold))
    for k in sorted(base.keys() - cur.keys(), key=str):
        print(f"  record missing from current run: {k}")
    return compared, warned


def write_step_summary(summary_rows, compared, warned, threshold):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not summary_rows:
        return
    with open(path, "a") as f:
        f.write("## Bench comparison\n\n")
        f.write(f"{compared} records compared, **{warned} regressed** "
                f"beyond {threshold:.0%}\n\n")
        f.write("| file | bench | dataset | phase | baseline (s) | "
                "current (s) | ratio |\n")
        f.write("|---|---|---|---|---:|---:|---:|\n")
        for name, k, base_s, cur_s, ratio, regressed in summary_rows:
            bench, dataset, phase = k
            flag = " :warning:" if regressed else ""
            f.write(f"| {name} | {bench} | {dataset} | {phase} | "
                    f"{base_s:.4f} | {cur_s:.4f} | {ratio:.2f}x{flag} |\n")
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline JSON file, or a "
                                     "directory of BENCH_*.json baselines")
    ap.add_argument("current", help="freshly measured JSON file, or the "
                                    "directory holding the fresh BENCH_*.json "
                                    "files")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative slowdown that triggers a warning "
                         "(0.20 = 20%%)")
    args = ap.parse_args()

    summary_rows = []
    compared = warned = 0
    if os.path.isdir(args.baseline):
        baselines = sorted(glob.glob(os.path.join(args.baseline,
                                                  "BENCH_*.json")))
        if not baselines:
            print(f"bench_compare: no BENCH_*.json under {args.baseline}")
            return 0
        for b in baselines:
            c = os.path.join(args.current, os.path.basename(b))
            if not os.path.exists(c):
                print(f"== {os.path.basename(b)}: no current-run file "
                      f"({c}), skipped")
                continue
            got_c, got_w = compare_one(b, c, args.threshold, summary_rows)
            compared += got_c
            warned += got_w
        extra = sorted(
            set(os.path.basename(p)
                for p in glob.glob(os.path.join(args.current,
                                                "BENCH_*.json"))) -
            set(os.path.basename(p) for p in baselines))
        for name in extra:
            print(f"== {name}: current-run only (no committed baseline)")
    else:
        compared, warned = compare_one(args.baseline, args.current,
                                       args.threshold, summary_rows)

    write_step_summary(summary_rows, compared, warned, args.threshold)
    print(f"bench_compare: {compared} compared, {warned} regressed beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
