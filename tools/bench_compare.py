#!/usr/bin/env python3
"""Compare a bench JSON report against a committed baseline.

Both files are JsonReport output (bench_common.hpp): a JSON array of records
keyed by (bench, dataset, phase) — thread count is deliberately not part of
the key, since the baseline and the CI runner rarely have the same core
count and a missing key would silence the comparison.  For every key
present in both,
the current `seconds` is compared to the baseline; slowdowns beyond the
threshold are reported as warnings.

This is a soft gate: it always exits 0 (CI smoke runners are noisy, shared
machines — a hard fail would flake), but the warnings land in the job log
and the ::warning:: annotations surface on the PR.  Regenerate the baseline
with e.g.

    ./build/bench/bench_kernels --smoke --json bench/baselines/BENCH_centrality.json

on a quiet machine when an intentional perf change shifts it.
"""

import argparse
import json
import sys


def key(rec):
    return (rec.get("bench"), rec.get("dataset"), rec.get("phase"))


def load(path):
    with open(path) as f:
        records = json.load(f)
    out = {}
    for rec in records:
        out[key(rec)] = rec
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative slowdown that triggers a warning "
                         "(0.20 = 20%%)")
    args = ap.parse_args()

    try:
        base = load(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read baseline {args.baseline}: {e}")
        print("bench_compare: skipping comparison (no baseline yet)")
        return 0
    cur = load(args.current)

    warned = 0
    compared = 0
    for k, rec in sorted(cur.items(), key=str):
        ref = base.get(k)
        if ref is None:
            print(f"  new record (no baseline): {k}")
            continue
        base_s, cur_s = ref.get("seconds"), rec.get("seconds")
        if not base_s or not cur_s:
            continue
        compared += 1
        ratio = cur_s / base_s
        marker = ""
        if ratio > 1.0 + args.threshold:
            warned += 1
            marker = "  <-- REGRESSION"
            print(f"::warning title=bench regression::{k}: "
                  f"{base_s:.4f}s -> {cur_s:.4f}s ({ratio:.2f}x)")
        print(f"  {k}: {base_s:.4f}s -> {cur_s:.4f}s ({ratio:.2f}x){marker}")
    for k in sorted(base.keys() - cur.keys(), key=str):
        print(f"  record missing from current run: {k}")

    print(f"bench_compare: {compared} compared, {warned} regressed beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
