#!/usr/bin/env python3
"""Project-specific lint rules for the SNAP library sources.

clang-tidy covers the generic C++ pitfalls; these rules encode contracts
that are unique to this codebase's determinism and performance guarantees:

  randomness        No rand()/srand()/std::random_device/std::mt19937/
                    time(NULL)-style seeding outside snap/util/rng.hpp.
                    Every random stream must flow through the seeded,
                    deterministic SplitMix64 so results are reproducible.
  std-function      No std::function in snap library code (parameters or
                    members): hot-loop visitor APIs must stay templated so
                    the per-neighbor callback inlines.  The one deliberate
                    ABI-compat overload carries a suppression.
  omp-critical      Every `#pragma omp critical` needs an adjacent
                    `justification:` comment.  Criticals serialize a
                    parallel region; an unexplained one is either a perf
                    bug or a determinism patch hiding a design problem.
  reduction-note    Every parallel::atomic_add call site — and every
                    hand-rolled CAS accumulation of the form
                    compare_exchange_weak(cur, cur + x) — needs a nearby
                    `reduction:` comment stating that the accumulated
                    value is order-dependent (and hence not thread-count
                    reproducible).  Keeps the float-determinism contract
                    (docs/CORRECTNESS.md) auditable by grep.
  raw-mutex         No bare std::mutex / std::condition_variable /
                    std::lock_guard (or friends) in snap library code
                    outside snap/util/sync.hpp.  Locking must go through
                    the capability-annotated sync:: wrappers so Clang's
                    -Wthread-safety analysis sees every acquisition.
  guard-note        Every `sync::Mutex` member declaration needs an
                    adjacent `guards:` comment naming the fields it
                    protects, keeping the lock catalog
                    (docs/CORRECTNESS.md) greppable and in sync with the
                    GUARDED_BY annotations.

Suppress a finding with `// lint:allow(<rule>)` on the offending line.

Usage:
  lint_snap.py --root <repo-root>         lint src/snap; exit 1 on findings
  lint_snap.py --self-test [--root ...]   run the fixture suite in
                                          tools/lint_fixtures
  lint_snap.py --github-summary PATH      also append a per-rule finding
                                          count table (markdown) to PATH;
                                          defaults to $GITHUB_STEP_SUMMARY
                                          when set
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys
from dataclasses import dataclass


@dataclass
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RAW_STRING_PREFIX = re.compile(r"(?:u8|u|U|L)?R$")


def raw_string_span(text: str, i: int) -> int | None:
    """If the '\"' at text[i] opens a C++ raw string literal
    (R"delim(...)delim", with an optional u8/u/U/L encoding prefix),
    return the index one past its closing quote; else None."""
    m = RAW_STRING_PREFIX.search(text, max(0, i - 3), i)
    if not m:
        return None
    start = m.start()
    if start > 0 and (text[start - 1].isalnum() or text[start - 1] == "_"):
        return None  # identifier ending in R, not a raw-string prefix
    paren = text.find("(", i + 1)
    # The delimiter is at most 16 chars and contains no whitespace/parens.
    if paren == -1 or paren - (i + 1) > 16:
        return None
    delim = text[i + 1 : paren]
    if any(ch in ' \t\n\\)"' for ch in delim):
        return None
    close = text.find(")" + delim + '"', paren + 1)
    if close == -1:
        return len(text)  # unterminated: swallow the rest of the file
    return close + len(delim) + 2


def strip_comments_and_strings(text: str) -> list[str]:
    """Return the file's lines with comments and string/char literals
    blanked out (replaced by spaces, preserving line structure), so the
    rules below match only real code.  Raw string literals
    (R"(...)"/R"delim(...)delim") are handled as a unit — their contents
    may hold unbalanced quotes that would otherwise desync the matcher."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                end = raw_string_span(text, i)
                if end is not None:
                    # Blank the whole literal, newlines preserved (raw
                    # strings may span lines).
                    out.extend(ch if ch == "\n" else " "
                               for ch in text[i:end])
                    i = end
                else:
                    state = "string"
                    out.append(" ")
                    i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out).splitlines()


def suppressed(raw_lines: list[str], idx: int, rule: str) -> bool:
    return f"lint:allow({rule})" in raw_lines[idx]


RANDOMNESS_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "time()-based seeding"),
]


def check_randomness(path, raw, code):
    if path.name == "rng.hpp" and path.parent.name == "util":
        return
    for i, line in enumerate(code):
        for pat, what in RANDOMNESS_PATTERNS:
            if pat.search(line) and not suppressed(raw, i, "randomness"):
                yield Finding(path, i + 1, "randomness",
                              f"{what} outside snap/util/rng.hpp breaks "
                              "run-to-run reproducibility; use SplitMix64 "
                              "with an explicit seed")


STD_FUNCTION = re.compile(r"\bstd::function\b")


def check_std_function(path, raw, code):
    for i, line in enumerate(code):
        if STD_FUNCTION.search(line) and not suppressed(raw, i, "std-function"):
            yield Finding(path, i + 1, "std-function",
                          "std::function in library code defeats visitor "
                          "inlining; take a template callable (suppress "
                          "deliberate ABI shims with "
                          "// lint:allow(std-function))")


OMP_CRITICAL = re.compile(r"#\s*pragma\s+omp\s+critical")


def check_omp_critical(path, raw, code):
    for i, line in enumerate(code):
        if not OMP_CRITICAL.search(line):
            continue
        if suppressed(raw, i, "omp-critical"):
            continue
        window = raw[max(0, i - 2) : i + 1]
        if not any("justification:" in w for w in window):
            yield Finding(path, i + 1, "omp-critical",
                          "#pragma omp critical without a 'justification:' "
                          "comment within the two preceding lines; explain "
                          "why serialization is unavoidable here")


ATOMIC_ADD = re.compile(r"\bparallel\s*::\s*atomic_add\s*\(")
# Hand-rolled CAS accumulation: compare_exchange_weak(cur, cur + x) (or
# cur - x, or compare_exchange_strong).  Same order-dependence as
# atomic_add — and it additionally bypasses the shared primitive, so it
# must carry the same 'reduction:' annotation to stay grep-auditable.
CAS_ADD = re.compile(
    r"\bcompare_exchange_(?:weak|strong)\s*\(\s*(\w+)\s*,\s*\1\s*[+\-]")


def check_reduction_note(path, raw, code):
    if path.name == "parallel.hpp":
        return  # the primitive's own definition
    for i, line in enumerate(code):
        is_atomic_add = bool(ATOMIC_ADD.search(line))
        is_cas_add = bool(CAS_ADD.search(line))
        if not (is_atomic_add or is_cas_add):
            continue
        if suppressed(raw, i, "reduction-note"):
            continue
        window = raw[max(0, i - 3) : i + 1]
        if not any("reduction:" in w for w in window):
            what = ("parallel::atomic_add" if is_atomic_add
                    else "hand-rolled compare_exchange accumulation")
            yield Finding(path, i + 1, "reduction-note",
                          f"{what} without a 'reduction:' "
                          "comment within the three preceding lines; state "
                          "that this sum is accumulation-order-dependent")


RAW_MUTEX = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")


def in_sync_header(path: pathlib.Path) -> bool:
    return path.name == "sync.hpp" and path.parent.name == "util"


def check_raw_mutex(path, raw, code):
    if in_sync_header(path):
        return  # the one place allowed to wrap the std primitives
    for i, line in enumerate(code):
        m = RAW_MUTEX.search(line)
        if m and not suppressed(raw, i, "raw-mutex"):
            yield Finding(path, i + 1, "raw-mutex",
                          f"std::{m.group(1)} outside snap/util/sync.hpp is "
                          "invisible to Clang's -Wthread-safety analysis; "
                          "use sync::Mutex / sync::MutexLock / sync::CondVar "
                          "so the lock discipline stays compile-time checked")


# A sync::Mutex *declaration* (member or local): type, name, then ';', an
# initializer or a brace — not a `sync::Mutex&` parameter or return type.
GUARD_MUTEX_DECL = re.compile(r"\bsync::Mutex\s+\w+\s*[;={]")


def check_guard_note(path, raw, code):
    if in_sync_header(path):
        return
    for i, line in enumerate(code):
        if not GUARD_MUTEX_DECL.search(line):
            continue
        if suppressed(raw, i, "guard-note"):
            continue
        window = raw[max(0, i - 2) : i + 2]
        if not any("guards:" in w for w in window):
            yield Finding(path, i + 1, "guard-note",
                          "sync::Mutex declaration without an adjacent "
                          "'guards:' comment naming the fields it protects; "
                          "the greppable lock catalog "
                          "(docs/CORRECTNESS.md) must stay complete")


CHECKS = [check_randomness, check_std_function, check_omp_critical,
          check_reduction_note, check_raw_mutex, check_guard_note]

RULE_NAMES = ["randomness", "std-function", "omp-critical",
              "reduction-note", "raw-mutex", "guard-note"]


def lint_file(path: pathlib.Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8")
    raw = text.splitlines()
    code = strip_comments_and_strings(text)
    # The two views can disagree in length only on pathological final lines;
    # pad so index lookups stay safe.
    while len(code) < len(raw):
        code.append("")
    while len(raw) < len(code):
        raw.append("")
    findings: list[Finding] = []
    for check in CHECKS:
        findings.extend(check(path, raw, code))
    return findings


def lint_tree(root: pathlib.Path) -> list[Finding]:
    src = root / "src" / "snap"
    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            findings.extend(lint_file(path))
    return findings


def self_test(root: pathlib.Path) -> int:
    """Fixture suite: every bad_<rule>* file must trigger exactly that rule;
    every good_* file must be clean."""
    fixtures = root / "tools" / "lint_fixtures"
    failures = 0
    cases = sorted(fixtures.glob("*.cpp"))
    if not cases:
        print(f"self-test: no fixtures found under {fixtures}", file=sys.stderr)
        return 1
    for path in cases:
        findings = lint_file(path)
        name = path.stem
        if name.startswith("bad_"):
            expected = name[len("bad_"):].rsplit("_", 1)[0] \
                if name[len("bad_"):].rsplit("_", 1)[-1].isdigit() \
                else name[len("bad_"):]
            expected = expected.replace("_", "-")
            hit = [f for f in findings if f.rule == expected]
            wrong = [f for f in findings if f.rule != expected]
            if not hit:
                print(f"self-test FAIL: {path.name} expected a "
                      f"[{expected}] finding, got none", file=sys.stderr)
                failures += 1
            if wrong:
                for f in wrong:
                    print(f"self-test FAIL: {path.name} unexpected {f}",
                          file=sys.stderr)
                failures += 1
        else:
            for f in findings:
                print(f"self-test FAIL: clean fixture {path.name} "
                      f"flagged: {f}", file=sys.stderr)
                failures += 1
    if failures == 0:
        print(f"self-test OK ({len(cases)} fixtures)")
    return 1 if failures else 0


def write_summary(findings: list[Finding], dest: pathlib.Path) -> None:
    """Append a per-rule finding-count markdown table (CI step summary)."""
    counts = {rule: 0 for rule in RULE_NAMES}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    lines = ["### lint_snap findings", "", "| rule | findings |", "|---|---|"]
    lines += [f"| `{rule}` | {count} |" for rule, count in counts.items()]
    lines.append("")
    with dest.open("a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repository root (default: inferred from this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint_fixtures suite instead of linting src")
    ap.add_argument("--github-summary", type=pathlib.Path,
                    default=None, metavar="PATH",
                    help="append a per-rule count table to PATH (default: "
                         "$GITHUB_STEP_SUMMARY when set)")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    findings = lint_tree(args.root)
    for f in findings:
        print(f)
    summary = args.github_summary
    if summary is None:
        env = os.environ.get("GITHUB_STEP_SUMMARY")
        summary = pathlib.Path(env) if env else None
    if summary is not None:
        write_summary(findings, summary)
    if findings:
        print(f"lint_snap: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_snap: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
