#!/usr/bin/env python3
"""clang-tidy over the snap library with a content-hash skip cache.

CI calls this with a cache stamp path that actions/cache persists between
runs.  The stamp records a SHA-256 over every linted source/header, the
.clang-tidy config and the clang-tidy version; when nothing changed, the
whole run is skipped (clang-tidy is by far the slowest step of the
static-analysis job).

Usage:
  run_clang_tidy_cached.py --build-dir build [--stamp .tidy-stamp]
                           [--clang-tidy clang-tidy] [-j N]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def tree_digest(clang_tidy: str) -> str:
    h = hashlib.sha256()
    try:
        version = subprocess.run([clang_tidy, "--version"], check=True,
                                 capture_output=True, text=True).stdout
    except (OSError, subprocess.CalledProcessError):
        version = "unknown"
    h.update(version.encode())
    h.update((ROOT / ".clang-tidy").read_bytes())
    for path in sorted((ROOT / "src").rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            h.update(str(path.relative_to(ROOT)).encode())
            h.update(path.read_bytes())
    return h.hexdigest()


def lint_sources(build_dir: pathlib.Path) -> list[str]:
    """Translation units to lint, from the compilation database: the library
    sources only (tests/benches are compiled, not tidied — they are gtest/
    gbench macro soup that drowns the signal)."""
    db = json.loads((build_dir / "compile_commands.json").read_text())
    wanted = []
    for entry in db:
        f = entry["file"]
        if "/src/snap/" in f and f.endswith(".cpp"):
            wanted.append(f)
    return sorted(set(wanted))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=pathlib.Path, default=ROOT / "build")
    ap.add_argument("--stamp", type=pathlib.Path,
                    default=ROOT / ".clang-tidy-stamp")
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("-j", type=int, default=multiprocessing.cpu_count())
    args = ap.parse_args()

    digest = tree_digest(args.clang_tidy)
    if args.stamp.exists() and args.stamp.read_text().strip() == digest:
        print(f"clang-tidy: cache hit ({digest[:12]}), skipping")
        return 0

    files = lint_sources(args.build_dir)
    if not files:
        print("clang-tidy: no library sources in compile_commands.json",
              file=sys.stderr)
        return 1
    print(f"clang-tidy: linting {len(files)} translation units")

    failed = False
    batch = max(1, len(files) // max(args.j, 1) + 1)
    procs = []
    for i in range(0, len(files), batch):
        procs.append(subprocess.Popen(
            [args.clang_tidy, "-p", str(args.build_dir), "--quiet",
             *files[i : i + batch]]))
    for p in procs:
        if p.wait() != 0:
            failed = True
    if failed:
        return 1

    args.stamp.write_text(digest + "\n")
    print("clang-tidy: clean; stamp updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
